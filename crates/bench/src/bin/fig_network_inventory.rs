//! FN1 - inventoried nodes and time-to-full-inventory vs population
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_network_inventory`
//! (add `--quick` for a fast low-trial run, `--csv <path>` to also write
//! CSV; set `VAB_OBS=stderr|jsonl` for a structured trace and stage
//! breakdown). Topologies are sharded across the `vab-svc` worker pool;
//! `--jobs N` bounds the worker count.

use vab_bench::{network, report};

fn main() {
    report::run_figure("FN1", "network inventory vs population", network::fn1_network_inventory);
}
