//! FN3 - per-node and aggregate capacity vs population at ocean scale
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_capacity_scaling`
//! (add `--quick` for a fast low-trial run that still reaches N = 65,536,
//! `--csv <path>` to also write CSV; set `VAB_OBS=stderr|jsonl` for a
//! structured trace and stage breakdown). Deployments are sharded across
//! the `vab-svc` worker pool; `--jobs N` bounds the worker count. See
//! `SCALING.md` for the methodology and the √n theory column.

use vab_bench::{network, report};

fn main() {
    report::run_figure("FN3", "capacity scaling at ocean scale", network::fn3_capacity_scaling);
}
