//! `vab-svcd` — the simulation daemon.
//!
//! Serves the NDJSON job protocol over localhost TCP, backed by the full
//! figure registry, the persistent result cache, and a bounded worker
//! pool. Prints `listening on <addr>` once ready (scripts parse this to
//! learn the port when started with `:0`), then blocks until a client
//! sends `{"op":"shutdown"}` or the process receives EOF on stdin.
//!
//! ```text
//! vab-svcd [--addr 127.0.0.1:7411] [--workers N] [--queue N]
//!          [--cache-dir results/cache] [--cache-cap N]
//!          [--bank-dir results/banks]
//!          [--fault-seed S --fault-panic-prob P]
//!          [--chaos-seed S --chaos-intensity X]
//!          [--request-budget N]
//! ```
//!
//! `--fault-*` arms deterministic worker-panic injection
//! (`vab_fault::WorkerFaultPlan`) for chaos drills: affected jobs fail
//! typed while the daemon keeps serving. `--chaos-*` arms the full
//! service fault plan (`vab_fault::SvcFaultPlan`): wire drops,
//! truncated/corrupted frames, transient worker panics, and simulated
//! disk-write failures, all seed-pure — the daemon-side half of the F20
//! resilience drill.

use std::path::PathBuf;
use std::time::Duration;

use vab_bench::serve::{bench_executor, open_cache, DEFAULT_CACHE_DIR};
use vab_svc::pool::PoolConfig;
use vab_svc::server::{Server, ServerConfig};

struct Opts {
    addr: String,
    workers: usize,
    queue_cap: usize,
    cache_dir: PathBuf,
    cache_cap: usize,
    bank_dir: PathBuf,
    fault_seed: Option<u64>,
    fault_panic_prob: f64,
    chaos_seed: Option<u64>,
    chaos_intensity: f64,
    request_budget: u64,
}

fn usage(prog: &str) -> ! {
    eprintln!(
        "usage: {prog} [--addr 127.0.0.1:7411] [--workers N] [--queue N] \
         [--cache-dir DIR] [--cache-cap N] [--bank-dir DIR] \
         [--fault-seed S] [--fault-panic-prob P] \
         [--chaos-seed S] [--chaos-intensity X] [--request-budget N]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let argv: Vec<String> = std::env::args().collect();
    let prog = argv.first().cloned().unwrap_or_else(|| "vab-svcd".into());
    let mut opts = Opts {
        addr: "127.0.0.1:7411".into(),
        workers: 0,
        queue_cap: 64,
        cache_dir: PathBuf::from(DEFAULT_CACHE_DIR),
        cache_cap: 256,
        bank_dir: PathBuf::from(vab_replay::DEFAULT_BANK_DIR),
        fault_seed: None,
        fault_panic_prob: 1.0,
        chaos_seed: None,
        chaos_intensity: 0.5,
        request_budget: 0,
    };
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value =
            || -> &str { argv.get(i + 1).map(String::as_str).unwrap_or_else(|| usage(&prog)) };
        match flag {
            "--addr" => opts.addr = value().to_string(),
            "--workers" => opts.workers = value().parse().unwrap_or_else(|_| usage(&prog)),
            "--queue" => opts.queue_cap = value().parse().unwrap_or_else(|_| usage(&prog)),
            "--cache-dir" => opts.cache_dir = PathBuf::from(value()),
            "--cache-cap" => opts.cache_cap = value().parse().unwrap_or_else(|_| usage(&prog)),
            "--bank-dir" => opts.bank_dir = PathBuf::from(value()),
            "--fault-seed" => {
                opts.fault_seed = Some(value().parse().unwrap_or_else(|_| usage(&prog)));
            }
            "--fault-panic-prob" => {
                opts.fault_panic_prob = value().parse().unwrap_or_else(|_| usage(&prog));
            }
            "--chaos-seed" => {
                opts.chaos_seed = Some(value().parse().unwrap_or_else(|_| usage(&prog)));
            }
            "--chaos-intensity" => {
                opts.chaos_intensity = value().parse().unwrap_or_else(|_| usage(&prog));
            }
            "--request-budget" => {
                opts.request_budget = value().parse().unwrap_or_else(|_| usage(&prog));
            }
            "--help" | "-h" => usage(&prog),
            _ => usage(&prog),
        }
        i += 2;
    }
    opts
}

fn main() {
    let opts = parse_opts();
    if let Err(e) = vab_obs::init_from_env() {
        eprintln!("warning: VAB_OBS sink unavailable ({e}); observability disabled");
        vab_obs::disable();
    }
    if vab_obs::alloc::init_from_env() {
        eprintln!("vab-svcd: allocation profiling on (VAB_PROFILE=1)");
    }
    let mut executor = bench_executor().with_bank_dir(&opts.bank_dir);
    if let Some(seed) = opts.fault_seed {
        eprintln!(
            "vab-svcd: fault injection armed (seed={seed}, panic_prob={})",
            opts.fault_panic_prob
        );
        executor =
            executor.with_faults(vab_fault::WorkerFaultPlan::new(seed, opts.fault_panic_prob));
    }
    let chaos = opts.chaos_seed.map(|seed| {
        eprintln!("vab-svcd: chaos plan armed (seed={seed}, intensity={})", opts.chaos_intensity);
        vab_fault::SvcFaultPlan::new(
            seed,
            vab_fault::SvcFaultConfig::with_intensity(opts.chaos_intensity),
        )
    });
    if let Some(plan) = &chaos {
        executor = executor.with_svc_faults(*plan);
    }
    let cache = open_cache(&opts.cache_dir, opts.cache_cap);
    let cfg = ServerConfig {
        addr: opts.addr.clone(),
        pool: PoolConfig {
            workers: opts.workers,
            queue_cap: opts.queue_cap,
            ..PoolConfig::default()
        },
        request_budget: opts.request_budget,
        faults: chaos,
        ..ServerConfig::default()
    };
    let mut server = match Server::start(cfg, executor, cache) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("vab-svcd: cannot bind {}: {e}", opts.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.addr());
    eprintln!(
        "vab-svcd: {} workers, queue {}, cache {}",
        server.pool().workers(),
        opts.queue_cap,
        opts.cache_dir.display()
    );
    while !server.is_shutting_down() {
        std::thread::sleep(Duration::from_millis(100));
    }
    server.shutdown();
    let (done, failed) = server.pool().totals();
    let cache = server.pool().cache().stats();
    eprintln!(
        "vab-svcd: stopped ({done} done, {failed} failed, cache hit rate {:.0}%)",
        cache.hit_rate() * 100.0
    );
    if vab_obs::enabled() {
        // Freeze the daemon's final counters/stage histograms where the
        // offline tooling (`vab-obsctl report` / `slo --metrics`) looks.
        let path = std::path::Path::new("results/svcd-metrics.json");
        match vab_obs::metrics::Snapshot::capture().write_json(path) {
            Ok(()) => eprintln!("vab-svcd: metrics snapshot written to {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
    vab_obs::flush();
}
