//! F20 - service-layer chaos drill (resilience vs injected fault rate)
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_chaos_drill` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{chaos, report};

fn main() {
    report::run_figure(
        "F20",
        "service-layer chaos drill (resilience vs injected fault rate)",
        chaos::f20_chaos_drill,
    );
}
