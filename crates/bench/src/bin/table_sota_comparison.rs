//! T1 - head-to-head vs the prior state of the art (15x range claim)
//!
//! Usage: `cargo run --release -p vab-bench --bin table_sota_comparison` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "T1",
        "head-to-head vs the prior state of the art (15x range claim)",
        experiments::t1_sota_comparison,
    );
}
