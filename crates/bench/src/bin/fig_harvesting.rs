//! F12 - harvested power vs range against the node budget
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_harvesting` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure("F12", "harvested power vs range against the node budget", |_cfg| {
        experiments::f12_harvesting()
    });
}
