//! FR1 - replay validation: BER synthetic vs replayed bank, conv throughput
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_fr1_replay` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "FR1",
        "replay validation: BER synthetic vs replayed bank, conv throughput",
        experiments::fr1_replay_validation,
    );
}
