//! A4 - ablation: element failures vs gain and BER
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_ablation_failures` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "A4",
        "ablation: element failures vs gain and BER",
        experiments::a4_ablation_failures,
    );
}
