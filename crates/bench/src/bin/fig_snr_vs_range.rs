//! F6 - Eb/N0 vs range for VAB / PAB / conventional array
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_snr_vs_range` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "F6",
        "Eb/N0 vs range for VAB / PAB / conventional array",
        experiments::f6_snr_vs_range,
    );
}
