//! `vab-svc` — the command-line client for `vab-svcd`.
//!
//! ```text
//! vab-svc [--addr 127.0.0.1:7411] batch [--quick] [--figures a,b,c] [--expect-cached]
//! vab-svc [--addr ...] submit '<job json>' [--wait] [--expect-cached]
//! vab-svc [--addr ...] status <id>
//! vab-svc [--addr ...] fetch <id> [--wait-ms N]
//! vab-svc [--addr ...] stats [--json]
//! vab-svc [--addr ...] health [--json]
//! vab-svc [--addr ...] shutdown
//! ```
//!
//! `batch` submits figure jobs (default: three representative figures)
//! and waits for all of them, printing one status line each plus a
//! summary. `--expect-cached` exits non-zero unless *every* response was
//! a cache hit — CI uses it to prove the second identical batch never
//! recomputes.
//!
//! `submit --wait` blocks until the job is terminal; `submit
//! --expect-cached` implies `--wait` and exits non-zero unless the result
//! was served from the cache — CI uses it to prove the second build of a
//! replay bank never regenerates.
//!
//! `stats` and `health` print an aligned human-readable table by
//! default; `--json` emits the raw one-line wire response for scripts.
//!
//! With `VAB_OBS=jsonl` (and `VAB_OBS_PATH`), submissions run under
//! client-side `svc.submit` spans whose context rides the wire, so
//! `vab-obsctl trace --job <digest>` can merge this process's trace with
//! the daemon's into one cross-process waterfall.

use vab_bench::serve::figure_job;
use vab_bench::ExpConfig;
use vab_svc::client::Client;
use vab_svc::job::JobSpec;
use vab_svc::wire::Request;
use vab_util::json::Json;

const DEFAULT_FIGURES: &[&str] = &["t3_link_budget", "f6_snr_vs_range", "f7_ber_vs_range"];

fn usage(prog: &str) -> ! {
    eprintln!(
        "usage: {prog} [--addr 127.0.0.1:7411] <command>\n\
         commands:\n\
         \x20 batch [--quick] [--figures a,b,c] [--expect-cached]\n\
         \x20 submit '<job json>' [--wait] [--expect-cached]\n\
         \x20 status <id>\n\
         \x20 fetch <id> [--wait-ms N]\n\
         \x20 stats [--json]\n\
         \x20 health [--json]\n\
         \x20 shutdown"
    );
    std::process::exit(2);
}

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter().position(|a| a == flag).and_then(|i| argv.get(i + 1).cloned())
}

fn connect(addr: &str) -> Client {
    match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("vab-svc: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    if let Err(e) = vab_obs::init_from_env() {
        eprintln!("warning: VAB_OBS sink unavailable ({e}); observability disabled");
        vab_obs::disable();
    }
    vab_obs::alloc::init_from_env();
    let argv: Vec<String> = std::env::args().collect();
    let prog = argv.first().cloned().unwrap_or_else(|| "vab-svc".into());
    let addr = flag_value(&argv, "--addr").unwrap_or_else(|| "127.0.0.1:7411".into());
    let command = argv
        .iter()
        .skip(1)
        .find(|a| {
            !a.starts_with("--") && Some(a.as_str()) != flag_value(&argv, "--addr").as_deref()
        })
        .cloned()
        .unwrap_or_else(|| usage(&prog));
    let exit = match command.as_str() {
        "batch" => batch(&addr, &argv),
        "submit" => submit(&addr, &argv, &command),
        "status" => simple_id_op(&addr, &argv, &command, |id| Request::Status { id }),
        "fetch" => {
            let wait_ms =
                flag_value(&argv, "--wait-ms").and_then(|v| v.parse().ok()).unwrap_or(30_000);
            simple_id_op(&addr, &argv, &command, move |id| Request::Fetch { id, wait_ms })
        }
        "stats" => control_op(&addr, &argv, &Request::Stats),
        "health" => control_op(&addr, &argv, &Request::Health),
        "shutdown" => roundtrip(&addr, &Request::Shutdown),
        _ => usage(&prog),
    };
    vab_obs::flush();
    std::process::exit(exit);
}

fn roundtrip(addr: &str, req: &Request) -> i32 {
    let mut client = connect(addr);
    match client.roundtrip(req) {
        Ok(resp) => {
            println!("{}", resp.render());
            0
        }
        Err(e) => {
            eprintln!("vab-svc: {e}");
            1
        }
    }
}

/// `stats` / `health`: aligned human-readable table by default, the raw
/// one-line wire response with `--json`.
fn control_op(addr: &str, argv: &[String], req: &Request) -> i32 {
    if argv.iter().any(|a| a == "--json") {
        return roundtrip(addr, req);
    }
    let mut client = connect(addr);
    match client.roundtrip(req) {
        Ok(resp) => {
            let Some(fields) = resp.as_obj() else {
                println!("{}", resp.render());
                return 0;
            };
            for (key, value) in fields {
                if key == "ok" {
                    continue;
                }
                let rendered = match value {
                    Json::Str(s) => s.clone(),
                    other => other.render(),
                };
                println!("{key:<22} {rendered}");
            }
            0
        }
        Err(e) => {
            eprintln!("vab-svc: {e}");
            1
        }
    }
}

/// `status <id>` / `fetch <id>`: the id is the first non-flag argument
/// after the command name.
fn simple_id_op(
    addr: &str,
    argv: &[String],
    command: &str,
    make: impl FnOnce(String) -> Request,
) -> i32 {
    let pos = argv.iter().position(|a| a == command).expect("command present");
    let Some(id) = argv.get(pos + 1).filter(|a| !a.starts_with("--")) else {
        eprintln!("vab-svc: {command} needs a job id");
        return 2;
    };
    roundtrip(addr, &make(id.clone()))
}

/// `submit '<job json>' [--wait] [--expect-cached]`: parse, submit,
/// print the response. `--wait` blocks until the job is terminal;
/// `--expect-cached` implies `--wait` and fails unless the result came
/// from the cache.
fn submit(addr: &str, argv: &[String], command: &str) -> i32 {
    let pos = argv.iter().position(|a| a == command).expect("command present");
    let Some(raw) = argv.get(pos + 1).filter(|a| !a.starts_with("--")) else {
        eprintln!("vab-svc: submit needs a job JSON argument");
        return 2;
    };
    let expect_cached = argv.iter().any(|a| a == "--expect-cached");
    let wait = expect_cached || argv.iter().any(|a| a == "--wait");
    let spec =
        match Json::parse(raw).map_err(|e| e.to_string()).and_then(|v| JobSpec::from_json(&v)) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("vab-svc: bad job spec: {e}");
                return 2;
            }
        };
    // Through `Client::submit` (not a raw roundtrip) so the submission
    // runs under a traced `svc.submit` span when VAB_OBS is on.
    let mut client = connect(addr);
    let resp = match client.submit_with_retry(&spec, None, 500) {
        Ok(resp) => resp,
        Err(e) => {
            eprintln!("vab-svc: {e}");
            return 1;
        }
    };
    if !wait {
        println!("{}", resp.render());
        return 0;
    }
    let cached_at_submit =
        resp.str_field("status") == Some("done") && resp.bool_field("cached") == Some(true);
    let Some(id) = resp.str_field("id").map(String::from) else {
        eprintln!("vab-svc: submit response has no id: {}", resp.render());
        return 1;
    };
    let resp = loop {
        match client.fetch_wait(&id, 30_000) {
            Ok(r) => match r.str_field("status") {
                Some("queued") | Some("running") => continue,
                _ => break r,
            },
            Err(e) => {
                eprintln!("vab-svc: fetch {id}: {e}");
                return 1;
            }
        }
    };
    println!("{}", resp.render());
    if resp.str_field("status") != Some("done") {
        eprintln!("vab-svc: job failed: {}", resp.str_field("error").unwrap_or("unknown"));
        return 1;
    }
    let cached = cached_at_submit || resp.bool_field("cached") == Some(true);
    if expect_cached && !cached {
        eprintln!("vab-svc: --expect-cached but the result was computed");
        return 1;
    }
    0
}

/// `batch`: submit a set of figure jobs, wait for all, summarize.
fn batch(addr: &str, argv: &[String]) -> i32 {
    let cfg =
        if argv.iter().any(|a| a == "--quick") { ExpConfig::quick() } else { ExpConfig::full() };
    let expect_cached = argv.iter().any(|a| a == "--expect-cached");
    let figures: Vec<String> = match flag_value(argv, "--figures") {
        Some(list) => list.split(',').map(str::trim).map(String::from).collect(),
        None => DEFAULT_FIGURES.iter().map(|s| s.to_string()).collect(),
    };
    let mut client = connect(addr);
    let mut ids = Vec::new();
    for name in &figures {
        let job = figure_job(name, &cfg);
        match client.submit_with_retry(&job, None, 200) {
            Ok(resp) => {
                let id = resp.str_field("id").unwrap_or("?").to_string();
                let cached_at_submit = resp.str_field("status") == Some("done")
                    && resp.bool_field("cached") == Some(true);
                ids.push((name.clone(), id, cached_at_submit));
            }
            Err(e) => {
                eprintln!("vab-svc: submit {name}: {e}");
                return 1;
            }
        }
    }
    let mut all_cached = true;
    let mut failures = 0;
    for (name, id, cached_at_submit) in &ids {
        let resp = loop {
            match client.fetch_wait(id, 30_000) {
                Ok(resp) => match resp.str_field("status") {
                    Some("queued") | Some("running") => continue,
                    _ => break resp,
                },
                Err(e) => {
                    eprintln!("vab-svc: fetch {name}: {e}");
                    return 1;
                }
            }
        };
        let status = resp.str_field("status").unwrap_or("?").to_string();
        let cached = *cached_at_submit || resp.bool_field("cached") == Some(true);
        all_cached &= cached;
        if status != "done" {
            failures += 1;
            eprintln!("vab-svc: {name} failed: {}", resp.str_field("error").unwrap_or("unknown"));
        }
        println!("{name}\t{id}\t{status}{}", if cached { "\t(cached)" } else { "" });
    }
    println!("batch: {} jobs, {} failed, all_cached={all_cached}", ids.len(), failures);
    if failures > 0 {
        return 1;
    }
    if expect_cached && !all_cached {
        eprintln!("vab-svc: --expect-cached but some results were computed");
        return 1;
    }
    0
}
