//! Regenerates every table and figure of the evaluation, writing CSVs to
//! `results/` and printing each table. This is the one-command artifact:
//!
//! ```text
//! cargo run --release -p vab-bench --bin run_all          # full fidelity
//! cargo run --release -p vab-bench --bin run_all -- --quick
//! ```

use vab_bench::experiments;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { experiments::ExpConfig::quick() } else { experiments::ExpConfig::full() };
    let out_dir = std::path::Path::new("results");
    std::fs::create_dir_all(out_dir).expect("create results/");
    let started = std::time::Instant::now();
    for (name, table) in experiments::all_experiments(&cfg) {
        println!("==== {name} ====");
        print!("{}", table.to_pretty());
        println!();
        let path = out_dir.join(format!("{name}.csv"));
        table.write_csv(&path).expect("write CSV");
    }
    eprintln!("all experiments regenerated into results/ in {:.1?}", started.elapsed());
}
