//! Regenerates every table and figure of the evaluation, writing CSVs to
//! `results/` and printing each table. This is the one-command artifact:
//!
//! ```text
//! cargo run --release -p vab-bench --bin run_all          # full fidelity
//! cargo run --release -p vab-bench --bin run_all -- --quick
//! VAB_OBS=jsonl cargo run --release -p vab-bench --bin run_all -- --quick
//! ```
//!
//! With `VAB_OBS=stderr|jsonl` each figure also reports its per-stage
//! wall-clock breakdown, and the run ends with a metrics snapshot in
//! `results/metrics.json` plus (for `jsonl`) a trace at
//! `results/trace.jsonl`.

fn main() {
    vab_bench::report::run_all_main();
}
