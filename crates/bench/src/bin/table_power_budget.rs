//! T2 - node power budget (ultra-low-power claim)
//!
//! Usage: `cargo run --release -p vab-bench --bin table_power_budget` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure("T2", "node power budget (ultra-low-power claim)", |_cfg| {
        experiments::t2_power_budget()
    });
}
