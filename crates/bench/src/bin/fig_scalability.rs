//! F9 - gain and range vs number of Van Atta pairs
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_scalability` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "F9",
        "gain and range vs number of Van Atta pairs",
        experiments::f9_scalability,
    );
}
