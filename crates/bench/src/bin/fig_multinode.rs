//! F14 - multi-node inventory and TDMA throughput
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_multinode` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "F14",
        "multi-node inventory and TDMA throughput",
        experiments::f14_multinode,
    );
}
