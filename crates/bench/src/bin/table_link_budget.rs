//! T3 - round-trip link budget at 100 m and 300 m
//!
//! Usage: `cargo run --release -p vab-bench --bin table_link_budget` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure("T3", "round-trip link budget at 100 m and 300 m", |_cfg| {
        experiments::t3_link_budget()
    });
}
