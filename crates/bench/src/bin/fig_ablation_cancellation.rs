//! A3 - ablation: reader carrier-cancellation quality vs range
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_ablation_cancellation` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "A3",
        "ablation: reader carrier-cancellation quality vs range",
        experiments::a3_ablation_cancellation,
    );
}
