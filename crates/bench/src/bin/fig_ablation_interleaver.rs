//! A6 - interleaver vs impulsive (snapping-shrimp) noise
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_ablation_interleaver` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "A6",
        "interleaver vs impulsive (snapping-shrimp) noise",
        experiments::a6_ablation_interleaver,
    );
}
