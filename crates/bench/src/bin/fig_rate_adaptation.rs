//! F15 - adaptive rate control on a drifting deployment
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_rate_adaptation` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "F15",
        "adaptive rate control on a drifting deployment",
        experiments::f15_rate_adaptation,
    );
}
