//! F18 - modulation comparison: FM0 vs FSK through the river channel
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_modulation_comparison` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "F18",
        "modulation comparison: FM0 vs FSK through the river channel",
        experiments::f18_modulation_comparison,
    );
}
