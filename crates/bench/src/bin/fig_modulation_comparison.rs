//! F18 - FM0-OOK vs FSK backscatter at the waveform level.
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_modulation_comparison`

use vab_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = if args.iter().any(|a| a == "--quick") {
        experiments::ExpConfig::quick()
    } else {
        experiments::ExpConfig::full()
    };
    let table = experiments::f18_modulation_comparison(&cfg);
    println!("# F18 - modulation comparison: FM0 vs FSK through the river channel");
    println!();
    print!("{}", table.to_pretty());
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let path = args.get(i + 1).expect("--csv needs a path");
        table.write_csv(std::path::Path::new(path)).expect("write CSV");
        eprintln!("wrote {path}");
    }
}
