//! FN2 - aggregate goodput and Jain fairness vs population and density
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_network_goodput`
//! (add `--quick` for a fast low-trial run, `--csv <path>` to also write
//! CSV; set `VAB_OBS=stderr|jsonl` for a structured trace and stage
//! breakdown). Topologies are sharded across the `vab-svc` worker pool;
//! `--jobs N` bounds the worker count.

use vab_bench::{network, report};

fn main() {
    report::run_figure(
        "FN2",
        "network goodput and fairness vs density",
        network::fn2_network_goodput,
    );
}
