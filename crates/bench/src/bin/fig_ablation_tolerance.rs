//! A5 - manufacturing tolerance: modulation-depth yield by build class
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_ablation_tolerance` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "A5",
        "manufacturing tolerance: modulation-depth yield by build class",
        experiments::a5_tolerance_yield,
    );
}
