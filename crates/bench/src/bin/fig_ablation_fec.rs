//! A2 - ablation: FEC choice vs range
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_ablation_fec` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure("A2", "ablation: FEC choice vs range", experiments::a2_ablation_fec);
}
