//! F7 - BER vs range at 100/500/1000 bps (>300 m at BER 1e-3)
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_ber_vs_range` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV).

use vab_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = if args.iter().any(|a| a == "--quick") {
        experiments::ExpConfig::quick()
    } else {
        experiments::ExpConfig::full()
    };
    let table = experiments::f7_ber_vs_range(&cfg);
    println!("# F7 - BER vs range at 100/500/1000 bps (>300 m at BER 1e-3)");
    println!();
    print!("{}", table.to_pretty());
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let path = args.get(i + 1).expect("--csv needs a path");
        table.write_csv(std::path::Path::new(path)).expect("write CSV");
        eprintln!("wrote {path}");
    }
}
