//! F7 - BER vs range at 100/500/1000 bps (>300 m at BER 1e-3)
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_ber_vs_range` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "F7",
        "BER vs range at 100/500/1000 bps (>300 m at BER 1e-3)",
        experiments::f7_ber_vs_range,
    );
}
