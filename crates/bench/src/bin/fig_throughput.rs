//! F13 - sustainable throughput vs range
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_throughput` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV).

use vab_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = if args.iter().any(|a| a == "--quick") {
        experiments::ExpConfig::quick()
    } else {
        experiments::ExpConfig::full()
    };
    let table = experiments::f13_throughput(&cfg);
    println!("# F13 - sustainable throughput vs range");
    println!();
    print!("{}", table.to_pretty());
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let path = args.get(i + 1).expect("--csv needs a path");
        table.write_csv(std::path::Path::new(path)).expect("write CSV");
        eprintln!("wrote {path}");
    }
}
