//! F13 - sustainable throughput vs range
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_throughput` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure("F13", "sustainable throughput vs range", experiments::f13_throughput);
}
