//! F17 - randomized-deployment campaign (success = BER <= 1e-3)
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_campaign` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "F17",
        "randomized-deployment campaign (success = BER <= 1e-3)",
        experiments::f17_campaign,
    );
}
