//! F17 - the 1,500-deployment campaign aggregate.
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_campaign`
//! (`--quick` for a reduced campaign, `--csv <path>` to save).

use vab_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = if args.iter().any(|a| a == "--quick") {
        experiments::ExpConfig::quick()
    } else {
        experiments::ExpConfig::full()
    };
    let table = experiments::f17_campaign(&cfg);
    println!("# F17 - randomized-deployment campaign (success = BER <= 1e-3)");
    println!();
    print!("{}", table.to_pretty());
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let path = args.get(i + 1).expect("--csv needs a path");
        table.write_csv(std::path::Path::new(path)).expect("write CSV");
        eprintln!("wrote {path}");
    }
}
