//! A1 - ablation: Van Atta line-delay mismatch
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_ablation_delay` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "A1",
        "ablation: Van Atta line-delay mismatch",
        experiments::a1_ablation_delay,
    );
}
