//! F8 - orientation study: retrodirective vs conventional
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_orientation` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "F8",
        "orientation study: retrodirective vs conventional",
        experiments::f8_orientation,
    );
}
