//! F16 - cross-validation: theory vs link-budget MC vs waveform engine
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_engine_validation` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "F16",
        "cross-validation: theory vs link-budget MC vs waveform engine",
        experiments::f16_engine_validation,
    );
}
