//! F19 - cross-layer fault sweep: graceful degradation under injected faults
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_fault_sweep` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV).

use vab_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = if args.iter().any(|a| a == "--quick") {
        experiments::ExpConfig::quick()
    } else {
        experiments::ExpConfig::full()
    };
    let table = experiments::f19_fault_sweep(&cfg);
    println!("# F19 - cross-layer fault sweep (adaptive vs static stack)");
    println!();
    print!("{}", table.to_pretty());
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let path = args.get(i + 1).expect("--csv needs a path");
        table.write_csv(std::path::Path::new(path)).expect("write CSV");
        eprintln!("wrote {path}");
    }
}
