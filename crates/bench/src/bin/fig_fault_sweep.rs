//! F19 - cross-layer fault sweep (adaptive vs static stack)
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_fault_sweep` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure(
        "F19",
        "cross-layer fault sweep (adaptive vs static stack)",
        experiments::f19_fault_sweep,
    );
}
