//! F11 - modulation depth vs frequency for the load strategies
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_modulation_depth` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV; set
//! `VAB_OBS=stderr|jsonl` for a structured trace and stage breakdown).

use vab_bench::{experiments, report};

fn main() {
    report::run_figure("F11", "modulation depth vs frequency for the load strategies", |_cfg| {
        experiments::f11_modulation_depth()
    });
}
