//! F11 - modulation depth vs frequency for the load strategies
//!
//! Usage: `cargo run --release -p vab-bench --bin fig_modulation_depth` (add `--quick`
//! for a fast low-trial run, `--csv <path>` to also write CSV).

use vab_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = if args.iter().any(|a| a == "--quick") {
        experiments::ExpConfig::quick()
    } else {
        experiments::ExpConfig::full()
    };
    let _ = cfg;
    let table = experiments::f11_modulation_depth();
    println!("# F11 - modulation depth vs frequency for the load strategies");
    println!();
    print!("{}", table.to_pretty());
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let path = args.get(i + 1).expect("--csv needs a path");
        table.write_csv(std::path::Path::new(path)).expect("write CSV");
        eprintln!("wrote {path}");
    }
}
