//! Shared harness for the per-figure bench binaries and `run_all`.
//!
//! Every `src/bin/fig_*` / `table_*` binary used to carry its own copy of
//! the same preamble/CSV/arg-parsing boilerplate. They now all funnel
//! through [`run_figure`], which adds on top of the old behaviour:
//!
//! - a uniform preamble (figure id, title, trial/bit/seed config, and the
//!   observability mode resolved from `VAB_OBS`),
//! - elapsed wall-clock per figure on stderr,
//! - when observability is on: a per-stage time breakdown, a metrics
//!   snapshot written to `results/metrics.json`, and a flushed trace.
//!
//! Usage stays what it was: `--quick` for reduced trial counts, `--csv
//! <path>` to also write the table as CSV, `--json <path>` to override
//! where the machine-readable `BENCH_<sha>.json` perf snapshot lands
//! (default `results/BENCH_<sha>.json`). `VAB_OBS=off|stderr|jsonl`
//! selects the sink (see `vab_obs::init_from_env`).

use std::path::{Path, PathBuf};
use std::time::Instant;

use vab_obs::metrics::Snapshot;
use vab_obs::ObsMode;
use vab_sim::metrics::CsvTable;

use crate::experiments::{self, ExpConfig};
use crate::perf::BenchSnapshot;

/// Parsed command-line options shared by every bench binary.
struct Args {
    quick: bool,
    csv: Option<String>,
    json: Option<String>,
    /// `run_all --serve <addr>`: go through a `vab-svcd` daemon.
    serve: Option<String>,
}

/// Extracts `--<flag> <value>`; a flag with no following value (or one
/// followed by another option) is a usage error, not a panic.
fn flag_value(argv: &[String], flag: &str) -> Result<Option<String>, String> {
    match argv.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match argv.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("{flag} needs a path argument")),
        },
    }
}

fn try_parse_args(argv: &[String]) -> Result<Args, String> {
    let quick = argv.iter().any(|a| a == "--quick");
    let csv = flag_value(argv, "--csv")?;
    let json = flag_value(argv, "--json")?;
    let serve = flag_value(argv, "--serve")?;
    if let Some(jobs) = flag_value(argv, "--jobs")? {
        let n: usize = jobs.parse().map_err(|_| format!("--jobs wants a count, got {jobs:?}"))?;
        vab_util::threads::set_jobs(n);
    }
    Ok(Args { quick, csv, json, serve })
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    match try_parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            let prog = argv.first().map(String::as_str).unwrap_or("bench");
            eprintln!("error: {msg}");
            eprintln!(
                "usage: {prog} [--quick] [--jobs <n>] [--csv <path>] [--json <path>] \
                 [--serve <addr>]"
            );
            std::process::exit(2);
        }
    }
}

fn init_obs() -> ObsMode {
    match vab_obs::init_from_env() {
        Ok(mode) => mode,
        Err(e) => {
            eprintln!("warning: VAB_OBS sink unavailable ({e}); observability disabled");
            vab_obs::disable();
            ObsMode::Off
        }
    }
}

/// True when either plane records: events/timers (`VAB_OBS`) or the
/// allocation profile (`VAB_PROFILE`). Snapshots are worth capturing in
/// both cases.
fn recording() -> bool {
    vab_obs::enabled() || vab_obs::alloc::profiling()
}

/// Runs one figure/table experiment with the uniform preamble and
/// observability plumbing. `run` receives the resolved [`ExpConfig`];
/// experiments that take no config simply ignore it.
pub fn run_figure<F>(id: &str, title: &str, run: F)
where
    F: FnOnce(&ExpConfig) -> CsvTable,
{
    let args = parse_args();
    let cfg = if args.quick { ExpConfig::quick() } else { ExpConfig::full() };
    let mode = init_obs();
    let profiling = vab_obs::alloc::init_from_env();
    preamble(id, title, &cfg, args.quick, &mode, profiling);
    let before = recording().then(Snapshot::capture);
    let started = Instant::now();
    let table = run(&cfg);
    let elapsed = started.elapsed();
    println!();
    print!("{}", table.to_pretty());
    if let Some(path) = &args.csv {
        table.write_csv(Path::new(path)).expect("write CSV");
        eprintln!("wrote {path}");
    }
    eprintln!("[{id}] completed in {elapsed:.2?}");
    let delta = match before {
        Some(before) => stage_delta(&before, &Snapshot::capture()),
        None => Snapshot::default(),
    };
    let mut perf = BenchSnapshot::new(&cfg, args.quick);
    perf.push_figure(id, elapsed.as_secs_f64(), table.len(), &delta);
    write_perf(&perf, args.json.as_deref());
    finish(&mode);
}

/// Writes the perf snapshot to `override_path` or its default location,
/// reporting (but not dying on) IO errors.
fn write_perf(perf: &BenchSnapshot, override_path: Option<&str>) {
    let path = override_path.map(PathBuf::from).unwrap_or_else(|| perf.default_path());
    match perf.write(&path) {
        Ok(()) => eprintln!("perf snapshot: {}", path.display()),
        Err(e) => eprintln!("warning: could not write perf snapshot {}: {e}", path.display()),
    }
}

/// Prints the uniform figure header: id, title, config, obs mode, and
/// whether allocation profiling is recording.
fn preamble(id: &str, title: &str, cfg: &ExpConfig, quick: bool, mode: &ObsMode, profiling: bool) {
    println!("# {id} - {title}");
    println!(
        "# config: {} (trials={}, bits={}, seed={})  obs={}  profile={}",
        if quick { "quick" } else { "full" },
        cfg.trials,
        cfg.bits,
        cfg.seed,
        mode.label(),
        if profiling { "on" } else { "off" }
    );
}

/// End-of-run observability epilogue: stage breakdown, allocation
/// profile, metrics snapshot, trace flush. A no-op when both the event
/// plane and allocation profiling are off.
fn finish(mode: &ObsMode) {
    if !recording() {
        return;
    }
    let snap = Snapshot::capture();
    if let Some(summary) = snap.stage_summary() {
        eprint!("{summary}");
    }
    if let Some(summary) = snap.alloc_summary() {
        eprint!("{summary}");
    }
    let path = Path::new("results/metrics.json");
    match snap.write_json(path) {
        Ok(()) => eprintln!("metrics snapshot: {}", path.display()),
        Err(e) => eprintln!("warning: could not write metrics snapshot: {e}"),
    }
    if vab_obs::enabled() {
        vab_obs::flush();
        if let ObsMode::Jsonl(p) = mode {
            eprintln!("trace: {}", p.display());
        }
    }
}

/// Per-stage difference between two snapshots: what ran *between* them.
/// Only stages that recorded new observations survive; counters, gauges
/// and general histograms are dropped (the delta is for stage timing and
/// per-stage allocation attribution).
fn stage_delta(before: &Snapshot, after: &Snapshot) -> Snapshot {
    let mut delta = Snapshot::default();
    for h in &after.stages {
        let prev = before.stages.iter().find(|p| p.name == h.name);
        let (p_count, p_sum) = prev.map_or((0, 0.0), |p| (p.count, p.sum));
        if h.count <= p_count {
            continue;
        }
        let mut d = h.clone();
        d.count = h.count - p_count;
        d.sum = h.sum - p_sum;
        if let Some(p) = prev {
            for (b, pb) in d.buckets.iter_mut().zip(&p.buckets) {
                *b = b.saturating_sub(*pb);
            }
        }
        delta.stages.push(d);
    }
    for a in &after.alloc_stages {
        let prev = before.alloc_stages.iter().find(|p| p.name == a.name);
        let mut d = a.clone();
        if let Some(p) = prev {
            d.calls = a.calls.saturating_sub(p.calls);
            d.self_allocs = a.self_allocs.saturating_sub(p.self_allocs);
            d.self_bytes = a.self_bytes.saturating_sub(p.self_bytes);
            d.cum_allocs = a.cum_allocs.saturating_sub(p.cum_allocs);
            d.cum_bytes = a.cum_bytes.saturating_sub(p.cum_bytes);
        }
        if d.calls > 0 || d.cum_allocs > 0 {
            delta.alloc_stages.push(d);
        }
    }
    delta
}

/// The `run_all` entry point: regenerates every table and figure into
/// `results/`, with a per-figure stage-time breakdown when observability
/// is on, and a final `results/metrics.json` snapshot.
pub fn run_all_main() {
    let args = parse_args();
    let cfg = if args.quick { ExpConfig::quick() } else { ExpConfig::full() };
    let mode = init_obs();
    let profiling = vab_obs::alloc::init_from_env();
    let out_dir = Path::new("results");
    std::fs::create_dir_all(out_dir).expect("create results/");
    if let Some(addr) = &args.serve {
        run_all_served(addr, &cfg, out_dir, &mode);
        return;
    }
    let started = Instant::now();
    eprintln!(
        "run_all: {} (trials={}, bits={}, seed={})  obs={}  profile={}",
        if args.quick { "quick" } else { "full" },
        cfg.trials,
        cfg.bits,
        cfg.seed,
        mode.label(),
        if profiling { "on" } else { "off" }
    );
    let mut perf = BenchSnapshot::new(&cfg, args.quick);
    for (name, run) in experiments::all_experiments_lazy() {
        let before = recording().then(Snapshot::capture);
        let fig_started = Instant::now();
        let table = run(&cfg);
        let fig_elapsed = fig_started.elapsed();
        println!("==== {name} ====");
        print!("{}", table.to_pretty());
        println!();
        let path = out_dir.join(format!("{name}.csv"));
        table.write_csv(&path).expect("write CSV");
        eprintln!("[{name}] completed in {fig_elapsed:.2?}");
        let delta = match before {
            Some(before) => stage_delta(&before, &Snapshot::capture()),
            None => Snapshot::default(),
        };
        if let Some(summary) = delta.stage_summary() {
            eprint!("{summary}");
        }
        perf.push_figure(name, fig_elapsed.as_secs_f64(), table.len(), &delta);
    }
    eprintln!("all experiments regenerated into results/ in {:.1?}", started.elapsed());
    write_perf(&perf, args.json.as_deref());
    finish(&mode);
}

/// `run_all --serve <addr>`: regenerate the fleet *through* a `vab-svcd`
/// daemon. Identical re-runs are cache hits — the second invocation with
/// the same config re-materializes every CSV without recomputing physics.
fn run_all_served(addr: &str, cfg: &ExpConfig, out_dir: &Path, mode: &ObsMode) {
    let started = Instant::now();
    eprintln!(
        "run_all: serving through {addr} (trials={}, bits={}, seed={})",
        cfg.trials, cfg.bits, cfg.seed
    );
    let figures = match crate::serve::serve_all(addr, cfg) {
        Ok(figures) => figures,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let mut cached = 0usize;
    let total = figures.len();
    for fig in figures {
        std::fs::write(out_dir.join(format!("{}.csv", fig.name)), &fig.csv).expect("write CSV");
        eprintln!("[{}] {}", fig.name, if fig.cached { "cache hit" } else { "computed" });
        cached += fig.cached as usize;
    }
    eprintln!(
        "all {total} experiments served into results/ in {:.1?} ({cached} cache hits)",
        started.elapsed()
    );
    finish(mode);
}
