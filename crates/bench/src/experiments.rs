//! The reconstructed evaluation of the paper, experiment by experiment.
//!
//! Identifiers (T1…T3, F6…F14, A1, A2) index the per-experiment table in
//! DESIGN.md and EXPERIMENTS.md.

use vab_acoustics::environment::SeaState;
use vab_core::array::VanAttaArray;
use vab_harvest::budget::{NodeMode, PowerBudget};
use vab_harvest::pmu::Pmu;
use vab_link::fec::Fec;
use vab_link::frame::LinkConfig;
use vab_link::interleave::Interleaver;
use vab_piezo::bvd::Bvd;
use vab_piezo::reflection::{Load, ModulationStates};
use vab_sim::baseline::{FrontEnd, SystemKind};
use vab_sim::linkbudget::{harvest_at, LinkBudget};
use vab_sim::metrics::CsvTable;
use vab_sim::montecarlo::{run_point, run_point_with_front_end, MonteCarloConfig, TrialEngine};
use vab_sim::scenario::Scenario;
use vab_util::rng::seeded;
use vab_util::units::{Degrees, Hertz, Meters};

/// The VAB carrier used across the evaluation.
pub const F0: Hertz = Hertz(18_500.0);

/// Shared experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Monte Carlo trials per operating point.
    pub trials: usize,
    /// Information bits per trial.
    pub bits: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExpConfig {
    /// Full-fidelity runs for the published numbers.
    pub fn full() -> Self {
        Self { trials: 150, bits: 512, seed: 2023 }
    }

    /// Reduced counts for integration tests and smoke runs.
    pub fn quick() -> Self {
        Self { trials: 25, bits: 256, seed: 2023 }
    }

    fn mc(&self) -> MonteCarloConfig {
        MonteCarloConfig {
            trials: self.trials,
            bits_per_trial: self.bits,
            seed: self.seed,
            engine: TrialEngine::LinkBudget,
            threads: 0,
        }
    }
}

/// Measured BER at one scenario.
fn ber_of(s: &Scenario, cfg: &ExpConfig) -> (f64, f64, f64) {
    let r = run_point(s, &cfg.mc());
    (r.ber.ber(), r.per(), r.ebn0.mean())
}

/// Maximum range at which the measured BER stays at or below `target`,
/// found by bisection over Monte Carlo points.
pub fn max_range_mc(
    scenario_at: impl Fn(Meters) -> Scenario,
    target_ber: f64,
    cfg: &ExpConfig,
) -> Meters {
    let ok = |d: f64| {
        // Median-deployment BER: the statistic the paper's "range at BER
        // 10⁻³" reports (a field campaign quotes the typical deployment;
        // fade outliers show up as scatter, not as a mean penalty).
        let r = run_point(&scenario_at(Meters(d)), &cfg.mc());
        r.median_ber() <= target_ber
    };
    let (mut lo, mut hi) = (2.0f64, 5_000.0f64);
    if !ok(lo) {
        return Meters(0.0);
    }
    if ok(hi) {
        return Meters(hi);
    }
    for _ in 0..11 {
        let mid = 0.5 * (lo + hi);
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Meters(0.5 * (lo + hi))
}

/// Battery-free *continuous* operating range: the farthest distance at
/// which harvested power covers the listen-mode budget.
pub fn harvest_sustain_range(system: SystemKind) -> Meters {
    let budget = PowerBudget::vab_node().total(NodeMode::Listen);
    let rect = vab_harvest::rectifier::Rectifier::schottky_doubler();
    let ok = |d: f64| {
        let s = Scenario::river(system, Meters(d));
        let p_ac = harvest_at(&s);
        rect.dc_output(p_ac).value() >= budget.value()
    };
    let (mut lo, mut hi) = (1.0f64, 2_000.0f64);
    if !ok(lo) {
        return Meters(0.0);
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Meters(0.5 * (lo + hi))
}

// ---------------------------------------------------------------- Tables

/// **T1** — head-to-head against the prior state of the art: communication
/// range at BER 10⁻³ and 100 bps, plus the battery-free sustain range.
/// The headline: VAB / PAB range ratio ≈ 15×.
pub fn t1_sota_comparison(cfg: &ExpConfig) -> CsvTable {
    let mut t = CsvTable::new([
        "system",
        "mod_gain_db_at_0deg",
        "comm_range_m_boresight",
        "comm_range_m_30deg",
        "battery_free_range_m",
        "range_ratio_vs_pab",
    ]);
    let systems = [
        SystemKind::Pab,
        SystemKind::ConventionalArray { n_elements: 8 },
        SystemKind::Vab { n_pairs: 4 },
    ];
    let mut pab_range = 1.0;
    for sys in systems {
        let fe = FrontEnd::new(sys, F0);
        let gain = fe.modulated_gain_db(Degrees(0.0));
        let comm0 = max_range_mc(|d| Scenario::river(sys, d), 1e-3, cfg).value();
        // A moored/drifting node cannot aim itself: quote range at a
        // representative 30° misalignment ("across orientations").
        let comm30 =
            max_range_mc(|d| Scenario::river(sys, d).with_rotation(Degrees(30.0)), 1e-3, cfg)
                .value();
        let sustain = harvest_sustain_range(sys).value();
        if sys == SystemKind::Pab {
            pab_range = comm30.max(1.0);
        }
        t.row([
            sys.label(),
            format!("{gain:.1}"),
            format!("{comm0:.0}"),
            format!("{comm30:.0}"),
            format!("{sustain:.0}"),
            format!("{:.1}", comm30 / pab_range),
        ]);
    }
    t
}

/// **T2** — node power budget: per-component draw in each mode.
pub fn t2_power_budget() -> CsvTable {
    let b = PowerBudget::vab_node();
    let mut t = CsvTable::new(["component", "sleep_uw", "listen_uw", "backscatter_uw"]);
    for item in b.items() {
        t.row([
            item.component.to_string(),
            format!("{:.2}", item.draw[0].uw()),
            format!("{:.2}", item.draw[1].uw()),
            format!("{:.2}", item.draw[2].uw()),
        ]);
    }
    t.row([
        "TOTAL".to_string(),
        format!("{:.2}", b.total(NodeMode::Sleep).uw()),
        format!("{:.2}", b.total(NodeMode::Listen).uw()),
        format!("{:.2}", b.total(NodeMode::Backscatter).uw()),
    ]);
    t.row([
        "duty-cycled 10%/5%".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}", b.duty_cycled(0.10, 0.05).uw()),
    ]);
    t
}

/// **T3** — the link budget, term by term, at 100 m and 300 m (river, VAB).
pub fn t3_link_budget() -> CsvTable {
    let mut t = CsvTable::new(["term", "at_100m", "at_300m"]);
    let b100 = LinkBudget::compute(&Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(100.0)));
    let b300 = LinkBudget::compute(&Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(300.0)));
    for ((name, v100), (_, v300)) in b100.rows().into_iter().zip(b300.rows()) {
        t.row([name.to_string(), format!("{v100:.1}"), format!("{v300:.1}")]);
    }
    t
}

// ---------------------------------------------------------------- Figures

/// **F6** — mean Eb/N0 vs range for the three systems (river, 100 bps).
pub fn f6_snr_vs_range(cfg: &ExpConfig) -> CsvTable {
    let mut t = CsvTable::new(["range_m", "vab_ebn0_db", "pab_ebn0_db", "conventional_ebn0_db"]);
    for d in [10.0, 20.0, 50.0, 100.0, 150.0, 200.0, 300.0, 400.0, 500.0] {
        let mut row = vec![format!("{d:.0}")];
        for sys in [
            SystemKind::Vab { n_pairs: 4 },
            SystemKind::Pab,
            SystemKind::ConventionalArray { n_elements: 8 },
        ] {
            let (_, _, ebn0) = ber_of(&Scenario::river(sys, Meters(d)), cfg);
            row.push(format!("{ebn0:.1}"));
        }
        t.row(row);
    }
    t
}

/// **F7** — BER vs range at three bit rates (river, VAB): the
/// ">300 m at BER 10⁻³" claim.
pub fn f7_ber_vs_range(cfg: &ExpConfig) -> CsvTable {
    let mut t = CsvTable::new(["range_m", "ber_100bps", "ber_500bps", "ber_1000bps"]);
    for d in [50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0, 500.0] {
        let mut row = vec![format!("{d:.0}")];
        for bps in [100.0, 500.0, 1000.0] {
            let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(d)).with_bit_rate(bps);
            let (ber, _, _) = ber_of(&s, cfg);
            row.push(format!("{ber:.2e}"));
        }
        t.row(row);
    }
    t
}

/// **F8** — the orientation study: BER and Eb/N0 vs incidence angle at
/// 100 m for the retrodirective array vs the conventional array.
pub fn f8_orientation(cfg: &ExpConfig) -> CsvTable {
    let mut t = CsvTable::new([
        "angle_deg",
        "vab_ebn0_db",
        "vab_ber",
        "conventional_ebn0_db",
        "conventional_ber",
    ]);
    for deg in [-75.0, -60.0, -45.0, -30.0, -15.0, 0.0, 15.0, 30.0, 45.0, 60.0, 75.0] {
        let vab = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(100.0))
            .with_rotation(Degrees(deg));
        let conv = Scenario::river(SystemKind::ConventionalArray { n_elements: 8 }, Meters(100.0))
            .with_rotation(Degrees(deg));
        let (ber_v, _, ebn0_v) = ber_of(&vab, cfg);
        let (ber_c, _, ebn0_c) = ber_of(&conv, cfg);
        t.row([
            format!("{deg:.0}"),
            format!("{ebn0_v:.1}"),
            format!("{ber_v:.2e}"),
            format!("{ebn0_c:.1}"),
            format!("{ber_c:.2e}"),
        ]);
    }
    t
}

/// **F9** — scalability: retro gain and max range vs number of pairs.
pub fn f9_scalability(cfg: &ExpConfig) -> CsvTable {
    let mut t = CsvTable::new(["n_pairs", "n_elements", "retro_gain_db", "max_range_m_ber1e3"]);
    for pairs in [1usize, 2, 3, 4, 6, 8] {
        let arr = VanAttaArray::vab_default(pairs, F0);
        let gain = arr.retro_gain_db(Degrees(0.0), F0);
        let range =
            max_range_mc(|d| Scenario::river(SystemKind::Vab { n_pairs: pairs }, d), 1e-3, cfg)
                .value();
        t.row([
            pairs.to_string(),
            (2 * pairs).to_string(),
            format!("{gain:.1}"),
            format!("{range:.0}"),
        ]);
    }
    t
}

/// **F10** — the ocean validation: BER vs range across sea states.
pub fn f10_ocean(cfg: &ExpConfig) -> CsvTable {
    let mut t = CsvTable::new(["range_m", "ber_calm", "ber_smooth", "ber_slight", "ber_moderate"]);
    for d in [25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 200.0, 250.0] {
        let mut row = vec![format!("{d:.0}")];
        for ss in [SeaState::Calm, SeaState::Smooth, SeaState::Slight, SeaState::Moderate] {
            let s = Scenario::ocean(SystemKind::Vab { n_pairs: 4 }, Meters(d), ss);
            let (ber, _, _) = ber_of(&s, cfg);
            row.push(format!("{ber:.2e}"));
        }
        t.row(row);
    }
    t
}

/// **F11** — the electro-mechanical co-design: modulation depth and harvest
/// fraction vs frequency for the three load strategies.
pub fn f11_modulation_depth() -> CsvTable {
    let bvd = Bvd::vab_default();
    let f0 = bvd.series_resonance();
    let naive = ModulationStates::open_short();
    let vab = ModulationStates::vab(&bvd, f0);
    let max = ModulationStates::max_depth(&bvd, f0);
    // PAB's always-harvesting states (same as the simulator baseline):
    // reflect only reaches |Γ| = 0.7 because the rectifier stays in circuit.
    let g_open = vab_piezo::reflection::gamma(&bvd, Load::Open, f0);
    let pab = ModulationStates {
        reflect: Load::Custom(vab_piezo::reflection::gamma_to_load(
            &bvd,
            vab_util::complex::C64::from_polar(0.7, g_open.arg()),
            f0,
        )),
        absorb: Load::ConjugateMatch,
    };
    let mut t = CsvTable::new([
        "freq_khz",
        "depth_open_short",
        "depth_pab_harvest_first",
        "depth_vab_codesign",
        "depth_max_reactive",
        "harvest_vab",
    ]);
    for step in 0..=20 {
        let f = Hertz(f0.value() * (0.85 + 0.015 * step as f64));
        t.row([
            format!("{:.2}", f.khz()),
            format!("{:.3}", naive.modulation_depth(&bvd, f)),
            format!("{:.3}", pab.modulation_depth(&bvd, f)),
            format!("{:.3}", vab.modulation_depth(&bvd, f)),
            format!("{:.3}", max.modulation_depth(&bvd, f)),
            format!("{:.3}", vab.harvest_fraction(&bvd, f)),
        ]);
    }
    t
}

/// **F12** — energy: harvested power vs range for VAB and PAB, against the
/// node budget, plus cold-start time.
pub fn f12_harvesting() -> CsvTable {
    use vab_core::scheduler::min_period_s;
    use vab_harvest::rectifier::Rectifier;
    use vab_util::units::Seconds;
    let budget = PowerBudget::vab_node();
    let budget_uw = budget.total(NodeMode::Listen).uw();
    let rect = Rectifier::schottky_doubler();
    let mut t = CsvTable::new([
        "range_m",
        "vab_harvest_uw",
        "pab_harvest_uw",
        "listen_budget_uw",
        "vab_cold_start_s",
        "wake_period_s",
    ]);
    for d in [2.0, 5.0, 10.0, 20.0, 30.0, 50.0, 75.0, 100.0, 150.0, 200.0] {
        let vab = harvest_at(&Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(d)));
        let pab = harvest_at(&Scenario::river(SystemKind::Pab, Meters(d)));
        let pmu = Pmu::vab_default();
        let cold = pmu
            .cold_start_time(vab)
            .map(|s| format!("{:.0}", s.value()))
            .unwrap_or_else(|| "inf".to_string());
        // Sustainable wake period for a 2 s listen + 1 s reply window on
        // the *rectified* VAB harvest.
        let dc = rect.dc_output(vab);
        let period = min_period_s(&budget, dc, Seconds(2.0), Seconds(1.0))
            .map(|p| format!("{p:.0}"))
            .unwrap_or_else(|| "never".to_string());
        t.row([
            format!("{d:.0}"),
            format!("{:.3}", vab.uw()),
            format!("{:.3}", pab.uw()),
            format!("{budget_uw:.2}"),
            cold,
            period,
        ]);
    }
    t
}

/// **F13** — throughput vs range: highest rate whose PER stays under 10 %,
/// and the resulting goodput.
pub fn f13_throughput(cfg: &ExpConfig) -> CsvTable {
    let rates = [100.0, 250.0, 500.0, 1000.0];
    let mut t = CsvTable::new(["range_m", "best_rate_bps", "per_at_best", "goodput_bps"]);
    for d in [50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0] {
        let mut best = (0.0f64, 1.0f64);
        for &bps in &rates {
            let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(d)).with_bit_rate(bps);
            let (_, per, _) = ber_of(&s, cfg);
            if per <= 0.1 && bps > best.0 {
                best = (bps, per);
            }
        }
        let goodput = best.0 * (1.0 - best.1);
        t.row([
            format!("{d:.0}"),
            format!("{:.0}", best.0),
            format!("{:.3}", best.1),
            format!("{goodput:.0}"),
        ]);
    }
    t
}

/// **F14** — networking: inventory cost vs population and TDMA network
/// throughput vs node count, on the capture-aware `vab-net` substrate.
///
/// Earlier revisions of this figure ran the MAC layer over an abstract
/// lossless channel that ignored node geometry entirely: every reply was
/// decodable and every slot shared by two nodes was a collision regardless
/// of where the nodes sat. It now drives the same ALOHA/TDMA policies over
/// a spatial [`vab_net`] deployment, so near/far power differences let a
/// strong reply *capture* a contended slot, weak nodes can fail their
/// decode draw even when alone, and TDMA goodput reflects each node's
/// actual per-frame delivery probability. The CSV schema is unchanged.
pub fn f14_multinode(cfg: &ExpConfig) -> CsvTable {
    let mut t = CsvTable::new([
        "n_nodes",
        "inventory_slots",
        "inventory_collisions",
        "tdma_round_s",
        "network_goodput_bps",
    ]);
    for n in [2usize, 4, 6, 8, 10, 16] {
        let spec = vab_net::NetworkSpec::river(n, cfg.seed + n as u64);
        let report = vab_net::run_deployment(&spec);
        t.row([
            n.to_string(),
            report.inventory.slots_used.to_string(),
            report.inventory.collisions.to_string(),
            format!("{:.1}", report.steady.round_duration_s),
            format!("{:.1}", report.steady.aggregate_goodput_bps),
        ]);
    }
    t
}

/// **A1** — ablation: Van Atta line-delay mismatch (random per pair, std in
/// fractions of a carrier period) vs retro gain.
pub fn a1_ablation_delay(cfg: &ExpConfig) -> CsvTable {
    let mut t = CsvTable::new(["mismatch_std_periods", "mean_retro_gain_db", "loss_vs_ideal_db"]);
    let ideal = VanAttaArray::vab_default(4, F0).retro_gain_db(Degrees(0.0), F0);
    for std in [0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5] {
        let mut acc = 0.0;
        let draws = 32;
        let mut rng = seeded(cfg.seed ^ 0xA1);
        for _ in 0..draws {
            let mut arr = VanAttaArray::vab_default(4, F0);
            for m in arr.delay_mismatch.iter_mut() {
                *m = vab_util::rng::gaussian(&mut rng) * std;
            }
            acc += arr.retro_gain_db(Degrees(0.0), F0);
        }
        let mean = acc / draws as f64;
        t.row([format!("{std:.2}"), format!("{mean:.2}"), format!("{:.2}", ideal - mean)]);
    }
    t
}

/// **A2** — ablation: FEC choice on the VAB front end vs range.
pub fn a2_ablation_fec(cfg: &ExpConfig) -> CsvTable {
    let stacks: [(&str, LinkConfig); 5] = [
        ("uncoded", LinkConfig::uncoded()),
        ("repetition3", LinkConfig { fec: Fec::Repetition(3), interleaver: None, whitening: true }),
        (
            "hamming74",
            LinkConfig {
                fec: Fec::Hamming74,
                interleaver: Some(Interleaver::new(4, 7)),
                whitening: true,
            },
        ),
        (
            "golay24",
            LinkConfig {
                fec: Fec::Golay24,
                interleaver: Some(Interleaver::new(8, 24)),
                whitening: true,
            },
        ),
        ("conv_k7_soft", LinkConfig::vab_default()),
    ];
    let mut t = CsvTable::new([
        "range_m",
        "uncoded",
        "repetition3",
        "hamming74",
        "golay24",
        "conv_k7_soft",
    ]);
    for d in [200.0, 300.0, 350.0, 400.0, 450.0, 500.0] {
        let mut row = vec![format!("{d:.0}")];
        for (_, link) in &stacks {
            let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(d)).with_link(*link);
            let (ber, _, _) = ber_of(&s, cfg);
            row.push(format!("{ber:.2e}"));
        }
        t.row(row);
    }
    t
}

/// **A3** — ablation: how good must the reader's carrier cancellation be?
/// Sweeps the residual self-interference floor and reports VAB's range.
pub fn a3_ablation_cancellation(cfg: &ExpConfig) -> CsvTable {
    let mut t =
        CsvTable::new(["si_floor_dbc_per_hz", "noise_floor_db_upa2hz", "max_range_m_ber1e3"]);
    for rel in [-60.0, -70.0, -75.0, -80.0, -85.0, -90.0] {
        let range = max_range_mc(
            |d| {
                let mut s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, d);
                s.reader.si_floor_rel_db = rel;
                s
            },
            1e-3,
            cfg,
        )
        .value();
        t.row([format!("{rel:.0}"), format!("{:.0}", 180.0 + rel), format!("{range:.0}")]);
    }
    t
}

/// **A4** — ablation: element failures. Dead transducers kill whole pairs;
/// how gracefully does the array (and the link) degrade?
pub fn a4_ablation_failures(cfg: &ExpConfig) -> CsvTable {
    let mut t = CsvTable::new(["failed_elements", "live_elements", "retro_gain_db", "ber_at_300m"]);
    for n_failed in 0..=3usize {
        let mut arr = VanAttaArray::vab_default(4, F0);
        for i in 0..n_failed {
            arr = arr.with_failed_element(2 * i); // kills pair i
        }
        let gain = arr.retro_gain_db(Degrees(0.0), F0);
        let live = arr.live_elements();
        let fe = FrontEnd::from_array(arr, F0);
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(300.0));
        let r = run_point_with_front_end(&s, &fe, &cfg.mc());
        t.row([
            n_failed.to_string(),
            live.to_string(),
            format!("{gain:.1}"),
            format!("{:.2e}", r.ber.ber()),
        ]);
    }
    t
}

/// **A5** — manufacturing tolerance: modulation-depth yield across build
/// quality classes (lab-trimmed vs. commercial vs. loose).
pub fn a5_tolerance_yield(cfg: &ExpConfig) -> CsvTable {
    use vab_piezo::tolerance::{depth_yield, Tolerances};
    let nominal = Bvd::vab_default();
    let f0 = nominal.series_resonance();
    let classes: [(&str, Tolerances); 3] = [
        ("lab_trimmed", Tolerances::lab_trimmed()),
        ("commercial", Tolerances::commercial()),
        ("loose", Tolerances { resonance: 0.05, q_factor: 0.2, c0: 0.1, network: 0.1 }),
    ];
    let mut t =
        CsvTable::new(["build_class", "mean_depth", "std_depth", "worst_depth", "yield_at_0p70"]);
    for (name, tol) in classes {
        let mut rng = seeded(cfg.seed ^ 0xA5);
        let rep = depth_yield(&nominal, f0, &tol, 0.70, 800, &mut rng);
        t.row([
            name.to_string(),
            format!("{:.3}", rep.depth.mean()),
            format!("{:.3}", rep.depth.std_dev()),
            format!("{:.3}", rep.depth.min()),
            format!("{:.2}", rep.yield_fraction),
        ]);
    }
    t
}

/// **F15** — rate adaptation on a drifting deployment: the reader-node
/// range walks 120 m → 380 m → 160 m over a campaign of queries; adaptive
/// rate control is compared against every fixed rate.
pub fn f15_rate_adaptation(cfg: &ExpConfig) -> CsvTable {
    use rand::RngExt;
    use vab_mac::rate_adapt::RateController;
    let n_queries = 90usize;
    let payload_bits = 256.0;
    let overhead_s = 1.0; // query + turnaround per poll
    let range_at = |q: usize| -> f64 {
        // Piecewise drift profile.
        let t = q as f64 / n_queries as f64;
        if t < 0.4 {
            120.0 + (380.0 - 120.0) * (t / 0.4)
        } else if t < 0.6 {
            380.0
        } else {
            380.0 - (380.0 - 160.0) * ((t - 0.6) / 0.4)
        }
    };
    // Per-query frame success probability at a rate: one small MC.
    let success_prob = |d: f64, bps: f64, seed: u64| -> f64 {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(d)).with_bit_rate(bps);
        let mc = MonteCarloConfig {
            trials: 8,
            bits_per_trial: 256,
            seed,
            engine: TrialEngine::LinkBudget,
            threads: 1,
        };
        1.0 - run_point(&s, &mc).per()
    };
    let mut t = CsvTable::new(["strategy", "delivered_kbit", "airtime_s", "goodput_bps"]);
    // Fixed strategies.
    for bps in [100.0, 250.0, 500.0, 1000.0] {
        let mut rng = seeded(cfg.seed ^ bps as u64);
        let mut delivered = 0.0;
        let mut time = 0.0;
        for q in 0..n_queries {
            let p = success_prob(range_at(q), bps, cfg.seed + q as u64);
            time += payload_bits / bps + overhead_s;
            if rng.random::<f64>() < p {
                delivered += payload_bits;
            }
        }
        t.row([
            format!("fixed_{bps:.0}bps"),
            format!("{:.1}", delivered / 1000.0),
            format!("{time:.0}"),
            format!("{:.1}", delivered / time),
        ]);
    }
    // Adaptive.
    let mut rc = RateController::new();
    let mut rng = seeded(cfg.seed ^ 0xADA);
    let mut delivered = 0.0;
    let mut time = 0.0;
    for q in 0..n_queries {
        let bps = rc.rate_bps(1);
        let p = success_prob(range_at(q), bps, cfg.seed + q as u64);
        time += payload_bits / bps + overhead_s;
        let ok = rng.random::<f64>() < p;
        if ok {
            delivered += payload_bits;
        }
        rc.on_outcome(1, ok);
    }
    t.row([
        "adaptive".to_string(),
        format!("{:.1}", delivered / 1000.0),
        format!("{time:.0}"),
        format!("{:.1}", delivered / time),
    ]);
    t
}

/// **F16** — engine cross-validation: uncoded BER vs range from (i) the
/// closed-form budget (no fading), (ii) the link-budget Monte Carlo and
/// (iii) the sample-level waveform engine.
pub fn f16_engine_validation(cfg: &ExpConfig) -> CsvTable {
    let mut t =
        CsvTable::new(["range_m", "theory_static_ber", "link_budget_mc_ber", "sample_level_ber"]);
    for d in [260.0, 320.0, 380.0, 440.0] {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(d))
            .with_link(LinkConfig::uncoded());
        let theory = LinkBudget::compute(&s).uncoded_ber();
        let fast = run_point(
            &s,
            &MonteCarloConfig {
                trials: cfg.trials,
                bits_per_trial: cfg.bits,
                seed: cfg.seed,
                engine: TrialEngine::LinkBudget,
                threads: 0,
            },
        );
        let slow = run_point(
            &s,
            &MonteCarloConfig {
                trials: (cfg.trials / 5).max(4),
                bits_per_trial: cfg.bits,
                seed: cfg.seed,
                engine: TrialEngine::SampleLevel,
                threads: 0,
            },
        );
        t.row([
            format!("{d:.0}"),
            format!("{theory:.2e}"),
            format!("{:.2e}", fast.ber.ber()),
            format!("{:.2e}", slow.ber.ber()),
        ]);
    }
    t
}

/// **F17** — the campaign aggregate: the abstract's "over 1,500 real-world
/// experimental trials", as randomized deployments bucketed by range.
pub fn f17_campaign(cfg: &ExpConfig) -> CsvTable {
    use vab_sim::campaign::{run_campaign, CampaignConfig};
    // Scale the campaign with the fidelity knob (full = the paper's 1,500).
    let n_trials = (cfg.trials * 10).max(150);
    let campaign = CampaignConfig {
        n_trials,
        bits_per_trial: cfg.bits,
        seed: cfg.seed,
        ..CampaignConfig::vab_default()
    };
    let report = run_campaign(&campaign);
    let mut t = CsvTable::new(["range_bucket_m", "deployments", "success_fraction"]);
    for (lo, hi) in [
        (10.0, 50.0),
        (50.0, 100.0),
        (100.0, 200.0),
        (200.0, 300.0),
        (300.0, 400.0),
        (400.0, 450.0),
    ] {
        let (n, frac) = report.success_in_range(lo, hi);
        t.row([format!("{lo:.0}-{hi:.0}"), n.to_string(), format!("{frac:.2}")]);
    }
    t.row([
        "ALL".to_string(),
        report.records.len().to_string(),
        format!("{:.2}", report.success_fraction()),
    ]);
    t.row([
        "max_successful_range_m".to_string(),
        String::new(),
        format!("{:.0}", report.max_successful_range()),
    ]);
    t
}

/// **F18** — modulation comparison: FM0-OOK vs FSK backscatter through the
/// same multipath channel and carrier leak, swept over noise level.
///
/// FM0 concentrates energy near DC (cheap, but it must survive the carrier
/// strip); FSK moves it to clean subcarrier offsets at the cost of switch
/// activity. The comparison runs at the waveform level.
pub fn f18_modulation_comparison(cfg: &ExpConfig) -> CsvTable {
    use vab_phy::carrier::remove_dc_sliding;
    use vab_phy::demod::{count_bit_errors, Demodulator};
    use vab_phy::fsk::{FskDemodulator, FskModulator, FskParams};
    use vab_phy::modulation::{BackscatterModulator, ModParams};
    use vab_util::complex::C64;
    use vab_util::rng::{complex_gaussian, random_bits};

    let mut t = CsvTable::new(["chip_snr_db", "fm0_ber", "fsk_ber"]);
    let n_bits = cfg.bits.max(128);
    let trials = (cfg.trials / 5).max(4);
    for snr_db in [-6.0, -3.0, 0.0, 3.0, 6.0, 9.0] {
        let sigma = 10f64.powf(-snr_db / 20.0);
        let mut fm0_err = 0usize;
        let mut fsk_err = 0usize;
        let mut total = 0usize;
        for trial in 0..trials {
            let mut rng = seeded(cfg.seed ^ 0xF18 ^ (trial as u64) << 8);
            let bits = random_bits(&mut rng, n_bits);
            // Common channel realization: river at 150 m, applied at each
            // scheme's own envelope rate.
            let ch = vab_acoustics::channel::ChannelModel::new(
                vab_acoustics::environment::Environment::river(),
                vab_acoustics::geometry::Position::new(0.0, 0.0, 2.0),
                vab_acoustics::geometry::Position::new(150.0, 0.0, 2.0),
                F0,
            );
            // --- FM0 leg.
            let params = ModParams::vab_default();
            let ir = ch.impulse_response(params.baseband_fs(), &mut rng);
            let h = ir.narrowband_gain();
            let scale = 1.0 / h.abs().max(1e-12); // normalize channel gain so SNR is the sweep axis
            let m = BackscatterModulator::new(params);
            let wave = m.switch_waveform(&bits);
            let tx: Vec<C64> = wave.iter().map(|&w| C64::real(w * scale)).collect();
            let rx_clean = ir.apply_baseband(&tx);
            let rx: Vec<C64> = rx_clean
                .iter()
                .map(|&v| v + C64::real(30.0) + complex_gaussian(&mut rng, sigma))
                .collect();
            let cleaned = remove_dc_sliding(&rx, params.samples_per_bit() * 32);
            let d = Demodulator::new(params).without_dc_removal();
            let start = (ir.arrivals()[0].delay_s * params.baseband_fs()).round() as usize;
            let got = d.demodulate(&cleaned, start, bits.len());
            fm0_err += count_bit_errors(&bits, &got);
            // --- FSK leg (same channel, its own sample rate).
            let fp = FskParams::vab_default();
            let ir2 = ch.impulse_response(fp.baseband_fs(), &mut rng);
            let h2 = ir2.narrowband_gain();
            let scale2 = 1.0 / h2.abs().max(1e-12);
            let fm = FskModulator::new(fp);
            let fwave = fm.switch_waveform(&bits);
            // Match per-bit energy: FSK runs at a higher sample rate, so
            // scale noise with √(fs ratio) to keep the same noise PSD.
            let sigma_fsk = sigma * (fp.baseband_fs() / params.baseband_fs()).sqrt();
            let ftx: Vec<C64> = fwave.iter().map(|&w| C64::real(w * scale2)).collect();
            let frx_clean = ir2.apply_baseband(&ftx);
            let frx: Vec<C64> = frx_clean
                .iter()
                .map(|&v| v + C64::real(30.0) + complex_gaussian(&mut rng, sigma_fsk))
                .collect();
            let fd = FskDemodulator::new(fp);
            let fstart = (ir2.arrivals()[0].delay_s * fp.baseband_fs()).round() as usize;
            let fgot = fd.demodulate(&frx, fstart, bits.len());
            fsk_err += count_bit_errors(&bits, &fgot);
            total += bits.len();
        }
        t.row([
            format!("{snr_db:.0}"),
            format!("{:.2e}", fm0_err as f64 / total as f64),
            format!("{:.2e}", fsk_err as f64 / total as f64),
        ]);
    }
    t
}

/// **A6** — why the interleaver exists: snapping-shrimp impulsive noise
/// wipes out *bursts* of chips; the block interleaver spreads each burst
/// across many codewords. Sweeps the snap rate at a fixed background SNR
/// and compares the coded link with and without interleaving.
pub fn a6_ablation_interleaver(cfg: &ExpConfig) -> CsvTable {
    use vab_acoustics::impulsive::ImpulsiveNoise;
    use vab_phy::demod::{count_bit_errors, Demodulator};
    use vab_phy::modulation::{BackscatterModulator, ModParams};
    use vab_sim::samplelevel::{decode_uplink, TransportedUplink};
    use vab_util::complex::C64;
    use vab_util::rng::random_bits;

    let params = ModParams::vab_default();
    let fs = params.baseband_fs();
    let sigma_bg = 0.18; // chip SNR ≈ 24 dB background: clean without snaps
    let n_bits = cfg.bits.max(192);
    let trials = (cfg.trials / 3).max(6);
    let stacks: [(&str, LinkConfig); 2] = [
        ("with_interleaver", LinkConfig::vab_default()),
        ("no_interleaver", LinkConfig { fec: Fec::Conv, interleaver: None, whitening: true }),
    ];
    let mut t = CsvTable::new(["snaps_per_s", "ber_with_interleaver", "ber_no_interleaver"]);
    for rate in [0.0, 10.0, 25.0, 50.0, 100.0] {
        let mut row = vec![format!("{rate:.0}")];
        for (_, link) in &stacks {
            let mut errors = 0usize;
            let mut total = 0usize;
            for trial in 0..trials {
                let mut rng = seeded(cfg.seed ^ 0xA6 ^ ((trial as u64) << 10) ^ rate as u64);
                let info = random_bits(&mut rng, n_bits);
                let channel_bits = {
                    let mut b = info.clone();
                    if link.whitening {
                        b = vab_link::whiten::whiten(&b);
                    }
                    b = link.fec.encode(&b);
                    if let Some(il) = &link.interleaver {
                        b = il.interleave(&b);
                    }
                    b
                };
                let m = BackscatterModulator::new(params);
                let wave = m.switch_waveform(&channel_bits);
                let mut bb: Vec<C64> =
                    wave.iter().map(|&w| C64::from_polar(1.0, 0.4) * w).collect();
                let noise = ImpulsiveNoise {
                    sigma_bg,
                    snap_ratio: 31.6,
                    snap_rate_hz: rate,
                    snap_duration_s: 5e-3, // one FM0 chip per snap at 100 bps
                };
                noise.corrupt(&mut bb, fs, &mut rng);
                let d = Demodulator::new(params).without_dc_removal();
                let hard = d.demodulate(&bb, 0, channel_bits.len());
                let mut soft = d.soft_bits(&bb, 0, channel_bits.len());
                let rms = (soft.iter().map(|x| x * x).sum::<f64>() / soft.len().max(1) as f64)
                    .sqrt()
                    .max(1e-300);
                for s in soft.iter_mut() {
                    *s /= rms;
                }
                let up = TransportedUplink { hard_bits: hard, soft_bits: soft };
                let mut decoded = decode_uplink(link, &up);
                decoded.truncate(n_bits);
                errors += count_bit_errors(&info, &decoded);
                total += n_bits;
            }
            row.push(format!("{:.2e}", errors as f64 / total as f64));
        }
        t.row(row);
    }
    t
}

/// Deterministic reader-side protocol loop under a fault plan — the
/// engine behind [`f19_fault_sweep`].
///
/// Four scheduled nodes are polled round-robin at 240 m; every poll runs
/// one *real* link-budget packet under that poll's faults. The adaptive
/// stack degrades gracefully (BER-spike rate fallback with clean-window
/// probe-up, bounded-exponential poll backoff for failing nodes,
/// silence-triggered re-inventory after reader restarts); the static stack
/// polls a fixed 250 bps schedule, retransmits blindly on a corrupted ACK,
/// and — having no re-inventory path — permanently forgets one node per
/// reader restart. Returns delivered goodput in bit/s.
fn fault_protocol_goodput(cfg: &ExpConfig, fc: vab_fault::FaultConfig, adaptive: bool) -> f64 {
    use vab_fault::FaultPlan;
    use vab_link::arq::{ArqReceiver, ArqSender, ReceiveOutcome, SenderAction};
    use vab_mac::inventory::SilenceMonitor;
    use vab_mac::rate_adapt::RateController;
    use vab_sim::montecarlo::run_point_with_trial_faults;
    use vab_util::rng::derive_seed;

    const NODES: [vab_mac::Addr; 4] = [1, 2, 3, 4];
    // Past the fixed 250 bps comfort zone: the static stack's rate is
    // marginal here, while the adaptive floor (100 bps) has clean margin.
    const RANGE_M: f64 = 260.0;
    const PAYLOAD_BITS: f64 = 192.0;
    const OVERHEAD_S: f64 = 1.0; // query + turnaround per poll
    const REINVENTORY_S: f64 = 4.0; // contention rounds to rebuild a schedule
    const N_ELEMENTS: usize = 8;
    let n_polls = (cfg.trials * 8).max(120);

    let plan = FaultPlan::new(cfg.seed ^ 0xF19, fc);
    let mut scheduled: Vec<vab_mac::Addr> = NODES.to_vec();
    let mut rc = RateController::new();
    let mut monitor = SilenceMonitor::new(3);
    // Per-node polls to skip (the MAC-level face of ARQ exponential backoff).
    let mut backoff: std::collections::HashMap<vab_mac::Addr, u32> =
        std::collections::HashMap::new();
    // Per-node stop-and-wait ARQ state machines shadow the goodput
    // accounting below: they see the same transmit/ack/loss outcomes (so
    // their retransmit/drop/corrupt-ack events and counters describe this
    // run) without owning any of the delivered/elapsed arithmetic.
    let mut arq: std::collections::HashMap<vab_mac::Addr, (ArqSender, ArqReceiver)> =
        NODES.iter().map(|&a| (a, (ArqSender::new(2), ArqReceiver::new()))).collect();
    let mut delivered = 0.0;
    let mut elapsed = 0.0;
    for poll in 0..n_polls {
        let faults = plan.trial_faults(poll as u64, N_ELEMENTS);
        if faults.protocol.reader_restart {
            elapsed += REINVENTORY_S;
            if adaptive {
                // The restarted reader re-inventories: full schedule back.
                scheduled = NODES.to_vec();
                for &a in &NODES {
                    monitor.reset(a);
                }
            } else if scheduled.len() > 1 {
                // The static reader reboots with a truncated node table and
                // has no recovery path for the node it lost.
                scheduled.remove(0);
            }
        }
        let addr = scheduled[poll % scheduled.len()];
        if adaptive {
            if let Some(skip) = backoff.get_mut(&addr) {
                if *skip > 0 {
                    *skip -= 1;
                    continue; // node in backoff: no airtime spent on it
                }
            }
        }
        // Frame for this poll: a fresh payload when the node's sender is
        // idle, otherwise this poll *is* the retransmission of the payload
        // still outstanding from an earlier failed poll (firing the ARQ
        // retransmit — or, retries exhausted, drop-then-fresh — path).
        let (tx, rx) = arq.get_mut(&addr).expect("scheduled node has ARQ state");
        let payload = vec![addr as u8; (PAYLOAD_BITS as usize) / 8];
        let frame_seq = match tx.offer(payload.clone()) {
            Some(SenderAction::Transmit { seq, .. }) => seq,
            _ => match tx.on_timeout() {
                SenderAction::Transmit { seq, .. } => seq,
                SenderAction::Idle => match tx.offer(payload.clone()) {
                    Some(SenderAction::Transmit { seq, .. }) => seq,
                    _ => unreachable!("sender is idle after a drop"),
                },
            },
        };
        let bps = if adaptive { rc.rate_bps(addr) } else { 250.0 };
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(RANGE_M)).with_bit_rate(bps);
        let fe = s.front_end();
        let mc = MonteCarloConfig {
            trials: 1,
            bits_per_trial: PAYLOAD_BITS as usize,
            seed: derive_seed(cfg.seed ^ 0xF19, poll as u64),
            engine: TrialEngine::LinkBudget,
            threads: 1,
        };
        let point = run_point_with_trial_faults(&s, &fe, &mc, &faults);
        let ok = point.packet_errors == 0;
        elapsed += PAYLOAD_BITS / bps + OVERHEAD_S;
        if ok {
            delivered += PAYLOAD_BITS;
            let ack_seq = match rx.on_frame(frame_seq, payload.clone()) {
                ReceiveOutcome::Deliver { ack_seq, .. } | ReceiveOutcome::Duplicate { ack_seq } => {
                    ack_seq
                }
            };
            if faults.protocol.ack_corrupted {
                // The sender missed the ACK and retransmits; the receiver's
                // duplicate filter keeps the payload counted once, but the
                // retransmission airtime is real for both stacks.
                elapsed += PAYLOAD_BITS / bps;
                tx.on_corrupt_ack();
                if let SenderAction::Transmit { seq, .. } = tx.on_timeout() {
                    let ack = match rx.on_frame(seq, payload) {
                        ReceiveOutcome::Deliver { ack_seq, .. }
                        | ReceiveOutcome::Duplicate { ack_seq } => ack_seq,
                    };
                    tx.on_ack(ack);
                }
            } else {
                tx.on_ack(ack_seq);
            }
            if adaptive {
                rc.on_outcome(addr, true);
                rc.on_ber_sample(addr, point.ber.ber());
                backoff.insert(addr, 0);
                monitor.on_poll(addr, true);
            }
        } else if adaptive {
            rc.on_outcome(addr, false);
            rc.on_ber_sample(addr, point.ber.ber());
            let e = backoff.entry(addr).or_insert(0);
            *e = (*e * 2 + 1).min(8); // bounded exponential backoff
            if monitor.on_poll(addr, false) {
                // Node crossed the silence threshold: re-inventory it.
                elapsed += REINVENTORY_S;
                backoff.insert(addr, 0);
                monitor.reset(addr);
            }
        }
    }
    delivered / elapsed.max(1e-9)
}

/// **F19** — cross-layer fault sweep: fault intensity 0 → severe on the
/// x-axis; PHY-level BER/PER under the plan, and delivered goodput for the
/// full adaptive stack vs. a static (fixed-rate, no-recovery) stack.
///
/// The figure makes the robustness claim quantitative: degradation is
/// monotone in intensity, and at moderate fault rates the adaptive stack
/// strictly outperforms the static one instead of falling off a cliff.
pub fn f19_fault_sweep(cfg: &ExpConfig) -> CsvTable {
    use vab_fault::{FaultConfig, FaultPlan};
    use vab_sim::montecarlo::run_point_faulted;
    let mut t = CsvTable::new([
        "intensity",
        "phy_median_ber",
        "phy_per",
        "static_goodput_bps",
        "adaptive_goodput_bps",
        "adaptive_gain",
    ]);
    for &x in &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let fc = FaultConfig::with_intensity(x);
        // PHY-level degradation at a representative mid-range point.
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(240.0));
        let plan = FaultPlan::new(cfg.seed, fc);
        let point = run_point_faulted(&s, &cfg.mc(), &plan);
        // Protocol-level goodput, static vs adaptive.
        let static_gp = fault_protocol_goodput(cfg, fc, false);
        let adaptive_gp = fault_protocol_goodput(cfg, fc, true);
        t.row([
            format!("{x:.1}"),
            format!("{:.2e}", point.median_ber()),
            format!("{:.3}", point.per()),
            format!("{static_gp:.1}"),
            format!("{adaptive_gp:.1}"),
            format!("{:.2}", adaptive_gp / static_gp.max(1e-9)),
        ]);
    }
    t
}

/// **FR1** — replay-substrate validation, two panels in one table.
///
/// `panel=ber` rows rerun the sample-level uncoded-BER sweep of F16 twice
/// per range — once with the synthetic per-trial channel source and once
/// replaying a recorded TVIR bank (`vab-replay`) of the same environment —
/// so any drift between generation and replay shows up as a BER gap.
/// `panel=conv` rows time direct vs overlap-save FFT convolution of a
/// one-second 48 kHz waveform against growing tap counts; the work runs
/// under the named stages `util.conv_direct` / `util.conv_fft`, which land
/// in the `BENCH_<sha>.json` perf snapshot where the obsctl baseline gate
/// locks them.
pub fn fr1_replay_validation(cfg: &ExpConfig) -> CsvTable {
    use std::time::Instant;
    use vab_replay::{BankSpec, WaterSpec};
    use vab_sim::montecarlo::run_point_with_source;
    use vab_sim::{BankSource, SyntheticSource};
    let mut t = CsvTable::new([
        "panel",
        "x",
        "synthetic_ber",
        "replayed_ber",
        "direct_ms",
        "fft_ms",
        "speedup",
    ]);
    for d in [260.0, 320.0, 380.0, 440.0] {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(d))
            .with_link(LinkConfig::uncoded());
        let mc = MonteCarloConfig {
            trials: (cfg.trials / 5).max(4),
            bits_per_trial: cfg.bits,
            seed: cfg.seed,
            engine: TrialEngine::SampleLevel,
            threads: 0,
        };
        let synth = run_point_with_source(&s, &mc, &SyntheticSource);
        let spec = BankSpec {
            water: WaterSpec::River,
            range_m: d,
            carrier_hz: s.carrier().value(),
            fs: s.mod_params.baseband_fs(),
            n_snapshots: 8,
            span_s: 4.0,
            seed: cfg.seed,
        };
        let bank = vab_replay::generate(&spec).expect("FR1 bank spec is valid");
        let replayed = run_point_with_source(&s, &mc, &BankSource::new(bank));
        t.row([
            "ber".to_string(),
            format!("{d:.0}"),
            format!("{:.2e}", synth.ber.ber()),
            format!("{:.2e}", replayed.ber.ber()),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    // Convolution throughput: one second of passband-rate signal against
    // growing tap counts. Direct is O(N·M), overlap-save O(N log L).
    let x: Vec<f64> =
        (0..48_000).map(|i| (i as f64 * 0.013).sin() + 0.4 * (i as f64 * 0.171).cos()).collect();
    for m in [64usize, 256, 1024, 4096] {
        let h: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).cos() / m as f64).collect();
        // Untimed warm-up populates the shared FFT plan cache so the timed
        // pass measures steady-state convolution, not one-time planning.
        let warm = vab_util::ola::convolve_fft(&x[..(4 * m).min(x.len())], &h);
        assert!(warm[m].is_finite());
        let started = Instant::now();
        let y_direct = {
            let _stage = vab_obs::time_stage("util.conv_direct");
            vab_util::filter::convolve(&x, &h)
        };
        let direct_s = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let y_fft = {
            let _stage = vab_obs::time_stage("util.conv_fft");
            vab_util::ola::convolve_fft(&x, &h)
        };
        let fft_s = started.elapsed().as_secs_f64();
        // Keep both results live so neither path can be optimized away.
        assert_eq!(y_direct.len(), y_fft.len());
        assert!((y_direct[m] + y_fft[m]).is_finite());
        t.row([
            "conv".to_string(),
            m.to_string(),
            String::new(),
            String::new(),
            format!("{:.3}", direct_s * 1e3),
            format!("{:.3}", fft_s * 1e3),
            format!("{:.1}", direct_s / fft_s.max(1e-12)),
        ]);
    }
    t
}

/// Every experiment with its identifier and a closure to produce it — the
/// registry `run_all` and the smoke tests iterate.
/// One entry of the lazy experiment registry.
pub type ExperimentFn = fn(&ExpConfig) -> CsvTable;

/// The registry as unevaluated functions, so callers (`run_all`, the
/// observability harness) can time or interleave per-experiment work.
/// Config-free experiments ignore the `ExpConfig` they are handed.
pub fn all_experiments_lazy() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("t1_sota_comparison", t1_sota_comparison as ExperimentFn),
        ("t2_power_budget", |_cfg| t2_power_budget()),
        ("t3_link_budget", |_cfg| t3_link_budget()),
        ("f6_snr_vs_range", f6_snr_vs_range),
        ("f7_ber_vs_range", f7_ber_vs_range),
        ("f8_orientation", f8_orientation),
        ("f9_scalability", f9_scalability),
        ("f10_ocean", f10_ocean),
        ("f11_modulation_depth", |_cfg| f11_modulation_depth()),
        ("f12_harvesting", |_cfg| f12_harvesting()),
        ("f13_throughput", f13_throughput),
        ("f14_multinode", f14_multinode),
        ("f15_rate_adaptation", f15_rate_adaptation),
        ("f16_engine_validation", f16_engine_validation),
        ("f17_campaign", f17_campaign),
        ("f18_modulation_comparison", f18_modulation_comparison),
        ("f19_fault_sweep", f19_fault_sweep),
        ("f20_chaos_drill", crate::chaos::f20_chaos_drill),
        ("a1_ablation_delay", a1_ablation_delay),
        ("a2_ablation_fec", a2_ablation_fec),
        ("a3_ablation_cancellation", a3_ablation_cancellation),
        ("a4_ablation_failures", a4_ablation_failures),
        ("a5_tolerance_yield", a5_tolerance_yield),
        ("a6_ablation_interleaver", a6_ablation_interleaver),
        ("fn1_network_inventory", crate::network::fn1_network_inventory),
        ("fn2_network_goodput", crate::network::fn2_network_goodput),
        ("fn3_capacity_scaling", crate::network::fn3_capacity_scaling),
        ("fr1_replay_validation", fr1_replay_validation),
    ]
}

pub fn all_experiments(cfg: &ExpConfig) -> Vec<(&'static str, CsvTable)> {
    all_experiments_lazy().into_iter().map(|(name, run)| (name, run(cfg))).collect()
}

/// Extracts a float cell for assertions in tests (`row`, `col` 0-based on
/// data rows).
pub fn cell_f64(table: &CsvTable, row: usize, col: usize) -> f64 {
    let csv = table.to_csv();
    let line = csv.lines().nth(row + 1).expect("row exists");
    let cell = line.split(',').nth(col).expect("col exists");
    cell.parse().expect("numeric cell")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExpConfig {
        ExpConfig { trials: 12, bits: 192, seed: 7 }
    }

    #[test]
    fn t1_shows_order_of_magnitude_gain() {
        let t = t1_sota_comparison(&cfg());
        assert_eq!(t.len(), 3);
        let pab_range = cell_f64(&t, 0, 2);
        let vab_range = cell_f64(&t, 2, 2);
        let ratio = cell_f64(&t, 2, 4);
        assert!(pab_range > 5.0 && pab_range < 80.0, "PAB {pab_range}");
        assert!(vab_range > 250.0, "VAB {vab_range}");
        assert!(ratio > 8.0, "ratio {ratio}");
    }

    #[test]
    fn t2_totals_are_microwatts() {
        let t = t2_power_budget();
        // TOTAL row is second from the end.
        let total_bs = cell_f64(&t, t.len() - 2, 3);
        assert!(total_bs > 1.0 && total_bs < 20.0, "backscatter total {total_bs} µW");
    }

    #[test]
    fn t3_has_all_budget_terms() {
        let t = t3_link_budget();
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn f7_ber_crosses_1e3_beyond_300m_at_100bps() {
        let t = f7_ber_vs_range(&ExpConfig { trials: 30, bits: 256, seed: 7 });
        // Row 5 is 300 m; column 1 is 100 bps.
        let ber_300 = cell_f64(&t, 5, 1);
        assert!(ber_300 <= 2e-3, "BER at 300 m = {ber_300}");
        // And 100 bps outlasts 1000 bps.
        let ber_300_1k = cell_f64(&t, 5, 3);
        assert!(ber_300_1k >= ber_300);
    }

    #[test]
    fn f8_vab_flat_conventional_collapses() {
        let t = f8_orientation(&cfg());
        // 0° row index 5; 45° row index 8.
        let vab_drop = cell_f64(&t, 5, 1) - cell_f64(&t, 8, 1);
        let conv_drop = cell_f64(&t, 5, 3) - cell_f64(&t, 8, 3);
        assert!(vab_drop < 5.0, "VAB dropped {vab_drop} dB at 45°");
        assert!(conv_drop > 10.0, "conventional only dropped {conv_drop} dB");
    }

    #[test]
    fn f9_gain_grows_with_pairs() {
        let t = f9_scalability(&cfg());
        let g1 = cell_f64(&t, 0, 2);
        let g4 = cell_f64(&t, 3, 2);
        // 1 → 4 pairs: 4× elements ≈ +12 dB.
        assert!((g4 - g1 - 12.0).abs() < 1.5, "Δ = {}", g4 - g1);
    }

    #[test]
    fn f11_codesign_beats_naive_at_resonance() {
        let t = f11_modulation_depth();
        // Find the resonance row (freq ratio 1.0 → step 10).
        let naive = cell_f64(&t, 10, 1);
        let vab = cell_f64(&t, 10, 3);
        let max = cell_f64(&t, 10, 4);
        assert!(vab > naive);
        assert!(max >= vab);
    }

    #[test]
    fn f12_harvest_crosses_budget_within_100m() {
        let t = f12_harvesting();
        let near = cell_f64(&t, 0, 1);
        let budget = cell_f64(&t, 0, 3);
        let far = cell_f64(&t, 9, 1);
        assert!(near > budget, "harvest at 2 m ({near}) should cover budget ({budget})");
        assert!(far < budget, "harvest at 200 m ({far}) should not");
    }

    #[test]
    fn f14_inventory_slots_scale_linearly() {
        let t = f14_multinode(&cfg());
        let s2 = cell_f64(&t, 0, 1);
        let s16 = cell_f64(&t, 5, 1);
        assert!(s16 > s2);
        // ≈ e slots per node asymptotically; allow wide tolerance.
        assert!(s16 / 16.0 < 8.0);
    }

    #[test]
    fn a1_mismatch_costs_gain() {
        let t = a1_ablation_delay(&cfg());
        let loss_0 = cell_f64(&t, 0, 2);
        let loss_half = cell_f64(&t, 7, 2);
        assert!(loss_0.abs() < 0.2);
        assert!(loss_half > 2.0, "λ/2 mismatch should cost dB, got {loss_half}");
    }

    #[test]
    fn f19_faults_degrade_monotonically_and_adaptive_wins_at_moderate_rates() {
        let t = f19_fault_sweep(&cfg());
        // PHY packet-error rate must be (weakly) monotone in intensity.
        let per: Vec<f64> = (0..6).map(|r| cell_f64(&t, r, 2)).collect();
        for w in per.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "PER not monotone: {per:?}");
        }
        assert!(per[5] > per[0], "severe faults must cost packets: {per:?}");
        // Goodput falls with intensity for both stacks (allow MC slack).
        let static_gp: Vec<f64> = (0..6).map(|r| cell_f64(&t, r, 3)).collect();
        let adaptive_gp: Vec<f64> = (0..6).map(|r| cell_f64(&t, r, 4)).collect();
        assert!(static_gp[5] < static_gp[0], "static goodput: {static_gp:?}");
        assert!(adaptive_gp[5] < adaptive_gp[0] * 1.05, "adaptive goodput: {adaptive_gp:?}");
        // At moderate fault intensity the adaptive stack strictly wins.
        for r in [2usize, 3] {
            assert!(
                adaptive_gp[r] > static_gp[r],
                "adaptive ({}) must beat static ({}) at intensity {}",
                adaptive_gp[r],
                static_gp[r],
                0.2 * r as f64
            );
        }
    }

    #[test]
    fn registry_contains_every_experiment() {
        let quick = ExpConfig { trials: 4, bits: 64, seed: 7 };
        let all = all_experiments(&quick);
        assert_eq!(all.len(), 28);
        for (name, table) in &all {
            assert!(!table.is_empty(), "{name} produced no rows");
        }
    }
}
