//! Criterion micro-benchmarks for the simulator's hot code paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use vab_acoustics::channel::ChannelModel;
use vab_acoustics::environment::Environment;
use vab_acoustics::geometry::Position;
use vab_link::fec::{conv_decode_soft, conv_encode};
use vab_link::golay::{golay24_decode, golay24_encode};
use vab_util::complex::C64;
use vab_util::fft::{goertzel_power, Fft};
use vab_util::resample::fractional_delay;
use vab_util::rng::{random_bits, seeded};
use vab_util::units::Hertz;

fn bench_fft(c: &mut Criterion) {
    let plan = Fft::new(1024);
    let data: Vec<C64> = (0..1024).map(|i| C64::new((i as f64).sin(), 0.0)).collect();
    c.bench_function("fft_1024", |b| {
        b.iter_batched(
            || data.clone(),
            |mut buf| {
                plan.forward(&mut buf);
                black_box(buf)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_goertzel(c: &mut Criterion) {
    let x: Vec<f64> = (0..2048).map(|i| (0.3 * i as f64).sin()).collect();
    c.bench_function("goertzel_2048", |b| {
        b.iter(|| black_box(goertzel_power(black_box(&x), 18_500.0, 96_000.0)))
    });
}

fn bench_viterbi(c: &mut Criterion) {
    let mut rng = seeded(1);
    let bits = random_bits(&mut rng, 512);
    let coded = conv_encode(&bits);
    let soft: Vec<f64> = coded.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
    c.bench_function("viterbi_soft_512_info_bits", |b| {
        b.iter(|| black_box(conv_decode_soft(black_box(&soft))))
    });
}

fn bench_golay(c: &mut Criterion) {
    let mut rng = seeded(2);
    let bits = random_bits(&mut rng, 504); // 42 words
    let mut coded = golay24_encode(&bits);
    // Two errors per word — the decoder's sweet spot.
    for w in 0..coded.len() / 24 {
        coded[w * 24 + 3] = !coded[w * 24 + 3];
        coded[w * 24 + 17] = !coded[w * 24 + 17];
    }
    c.bench_function("golay24_decode_504_info_bits", |b| {
        b.iter(|| black_box(golay24_decode(black_box(&coded))))
    });
}

fn bench_pie_slice(c: &mut Criterion) {
    use vab_phy::downlink::{pie_encode, EnvelopeDetector, PieParams};
    use vab_util::complex::C64;
    let p = PieParams::vab_default();
    let mut rng = seeded(3);
    let bits = random_bits(&mut rng, 56);
    let env = pie_encode(&bits, &p);
    let bb: Vec<C64> = env.iter().map(|&e| C64::real(e * 2.0)).collect();
    let det = EnvelopeDetector::for_params(&p);
    c.bench_function("pie_envelope_slice_56_bits", |b| {
        b.iter(|| black_box(det.slice(black_box(&bb))))
    });
}

fn bench_channel_arrivals(c: &mut Criterion) {
    let ch = ChannelModel::new(
        Environment::river(),
        Position::new(0.0, 0.0, 2.0),
        Position::new(300.0, 0.0, 2.0),
        Hertz(18_500.0),
    );
    c.bench_function("image_method_arrivals_300m", |b| {
        b.iter_batched(
            || seeded(7),
            |mut rng| black_box(ch.arrivals(&mut rng)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_fractional_delay(c: &mut Criterion) {
    let x: Vec<f64> = (0..4096).map(|i| (0.01 * i as f64).sin()).collect();
    c.bench_function("fractional_delay_4096", |b| {
        b.iter(|| black_box(fractional_delay(black_box(&x), 17.37, 32)))
    });
}

criterion_group!(
    hot_paths,
    bench_fft,
    bench_goertzel,
    bench_viterbi,
    bench_golay,
    bench_pie_slice,
    bench_channel_arrivals,
    bench_fractional_delay
);
criterion_main!(hot_paths);
