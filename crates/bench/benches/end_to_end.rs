//! Criterion benchmarks for whole simulation trials — the quantities that
//! set how long a 1,500-trial evaluation campaign takes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vab_sim::baseline::SystemKind;
use vab_sim::montecarlo::{run_point, MonteCarloConfig, TrialEngine};
use vab_sim::scenario::Scenario;
use vab_util::units::Meters;

fn bench_link_budget_point(c: &mut Criterion) {
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(300.0));
    let cfg = MonteCarloConfig {
        trials: 10,
        bits_per_trial: 256,
        seed: 1,
        engine: TrialEngine::LinkBudget,
        threads: 1,
    };
    c.bench_function("link_budget_point_10_trials", |b| {
        b.iter(|| black_box(run_point(black_box(&s), black_box(&cfg))))
    });
}

fn bench_sample_level_trial(c: &mut Criterion) {
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(100.0));
    let cfg = MonteCarloConfig {
        trials: 1,
        bits_per_trial: 96,
        seed: 1,
        engine: TrialEngine::SampleLevel,
        threads: 1,
    };
    c.bench_function("sample_level_trial_96_bits", |b| {
        b.iter(|| black_box(run_point(black_box(&s), black_box(&cfg))))
    });
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(300.0));
    let mut group = c.benchmark_group("parallel_scaling");
    for threads in [1usize, 4] {
        let cfg = MonteCarloConfig {
            trials: 32,
            bits_per_trial: 256,
            seed: 1,
            engine: TrialEngine::LinkBudget,
            threads,
        };
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| black_box(run_point(black_box(&s), black_box(&cfg))))
        });
    }
    group.finish();
}

criterion_group!(
    end_to_end,
    bench_link_budget_point,
    bench_sample_level_trial,
    bench_parallel_scaling
);
criterion_main!(end_to_end);
