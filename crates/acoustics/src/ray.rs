//! Ray tracing with refraction.
//!
//! The image method (see [`crate::channel`]) assumes straight-line
//! propagation — exact for the iso-velocity shallow water of the paper's
//! deployments. Stratified water (a thermocline, a deeper coastal column)
//! bends rays: Snell's invariant `cos θ / c(z)` curves paths toward the
//! sound-speed minimum and can open shadow zones a straight-line model
//! never predicts.
//!
//! This module integrates the standard 2-D ray equations
//!
//! ```text
//! dr/ds = cos θ        dz/ds = sin θ
//! dθ/ds = −cos θ · c'(z) / c(z)        dt/ds = 1 / c(z)
//! ```
//!
//! (θ measured from the horizontal, z positive down, midpoint integration)
//! with specular reflections at the surface and bottom, and finds eigenrays
//! between two points by bisecting launch angles.

use crate::soundspeed::Profile;
use vab_util::units::Meters;

/// One traced ray path.
#[derive(Debug, Clone)]
pub struct RayPath {
    /// Sampled (range, depth) points along the path, metres.
    pub points: Vec<(f64, f64)>,
    /// Travel time to the final point, seconds.
    pub travel_time_s: f64,
    /// Path length, metres.
    pub length_m: f64,
    /// Surface reflections along the way.
    pub n_surface: u32,
    /// Bottom reflections along the way.
    pub n_bottom: u32,
    /// Launch angle, radians from horizontal (positive down).
    pub launch_rad: f64,
}

impl RayPath {
    /// Final depth reached at the target range.
    pub fn final_depth(&self) -> f64 {
        self.points.last().map(|p| p.1).unwrap_or(f64::NAN)
    }
}

/// Ray-tracing configuration.
#[derive(Debug, Clone, Copy)]
pub struct RayTracer {
    /// Water depth, m.
    pub depth_m: f64,
    /// Integration step along the arc, m.
    pub step_m: f64,
    /// Abort tracing after this many surface+bottom bounces.
    pub max_bounces: u32,
}

impl RayTracer {
    /// Standard tracer: 0.5 m steps, up to 6 bounces.
    pub fn new(depth_m: f64) -> Self {
        assert!(depth_m > 0.0);
        Self { depth_m, step_m: 0.5, max_bounces: 6 }
    }

    /// Traces one ray from `(0, z0)` at `launch_rad` until it reaches
    /// `range_m` (or exceeds the bounce limit).
    pub fn trace(&self, profile: &Profile, z0: f64, launch_rad: f64, range_m: f64) -> RayPath {
        let mut r = 0.0f64;
        let mut z = z0.clamp(0.0, self.depth_m);
        let mut theta = launch_rad;
        let mut t = 0.0f64;
        let mut length = 0.0f64;
        let mut n_surface = 0u32;
        let mut n_bottom = 0u32;
        // Keep the stored path compact: record every ~2 m of range.
        let record_every = (2.0 / self.step_m).max(1.0) as usize;
        let mut points = vec![(r, z)];
        let mut i = 0usize;
        let eps = 1e-9;
        while r < range_m && n_surface + n_bottom <= self.max_bounces {
            let ds = self.step_m.min((range_m - r).max(eps) / theta.cos().abs().max(0.1));
            // Midpoint method for the coupled ODEs.
            let c1 = profile.at(z);
            let dc1 = self.gradient(profile, z);
            let k1_theta = -theta.cos() * dc1 / c1;
            let zm = z + 0.5 * ds * theta.sin();
            let thm = theta + 0.5 * ds * k1_theta;
            let cm = profile.at(zm.clamp(0.0, self.depth_m));
            let dcm = self.gradient(profile, zm.clamp(0.0, self.depth_m));
            r += ds * thm.cos();
            z += ds * thm.sin();
            theta += ds * (-thm.cos() * dcm / cm);
            t += ds / cm;
            length += ds;
            // Boundary reflections: specular (angle sign flip).
            if z <= 0.0 {
                z = -z;
                theta = -theta;
                n_surface += 1;
            } else if z >= self.depth_m {
                z = 2.0 * self.depth_m - z;
                theta = -theta;
                n_bottom += 1;
            }
            i += 1;
            if i.is_multiple_of(record_every) {
                points.push((r, z));
            }
        }
        points.push((r, z));
        RayPath { points, travel_time_s: t, length_m: length, n_surface, n_bottom, launch_rad }
    }

    fn gradient(&self, profile: &Profile, z: f64) -> f64 {
        match *profile {
            Profile::Iso(_) => 0.0,
            Profile::Linear { gradient, .. } => {
                let _ = z;
                gradient
            }
        }
    }

    /// Finds eigenrays from `(0, z_src)` to `(range, z_rcv)`: scans launch
    /// angles in ±`max_angle_rad`, then bisects every sign change of the
    /// depth error at the target range. Returns the refined paths (at most
    /// one per bracketing pair), sorted by travel time.
    pub fn eigenrays(
        &self,
        profile: &Profile,
        z_src: f64,
        z_rcv: f64,
        range: Meters,
        max_angle_rad: f64,
        n_scan: usize,
    ) -> Vec<RayPath> {
        assert!(n_scan >= 8);
        let range_m = range.value();
        let err = |angle: f64| -> f64 {
            let p = self.trace(profile, z_src, angle, range_m);
            p.final_depth() - z_rcv
        };
        let mut found = Vec::new();
        let mut prev_angle = -max_angle_rad;
        let mut prev_err = err(prev_angle);
        for k in 1..=n_scan {
            let angle = -max_angle_rad + 2.0 * max_angle_rad * k as f64 / n_scan as f64;
            let e = err(angle);
            if prev_err == 0.0 || (prev_err < 0.0) != (e < 0.0) {
                // Bisect the bracket.
                let (mut lo, mut hi) = (prev_angle, angle);
                let (mut elo, _) = (prev_err, e);
                for _ in 0..40 {
                    let mid = 0.5 * (lo + hi);
                    let em = err(mid);
                    if (em < 0.0) == (elo < 0.0) {
                        lo = mid;
                        elo = em;
                    } else {
                        hi = mid;
                    }
                }
                let angle_star = 0.5 * (lo + hi);
                let path = self.trace(profile, z_src, angle_star, range_m);
                if (path.final_depth() - z_rcv).abs() < 1.0 {
                    found.push(path);
                }
            }
            prev_angle = angle;
            prev_err = e;
        }
        found.sort_by(|a, b| a.travel_time_s.partial_cmp(&b.travel_time_s).expect("finite"));
        // Merge duplicates (adjacent brackets converging to the same ray).
        found.dedup_by(|a, b| (a.travel_time_s - b.travel_time_s).abs() < 1e-5);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    #[test]
    fn straight_ray_in_iso_water() {
        let tracer = RayTracer::new(50.0);
        let profile = Profile::Iso(1500.0);
        let p = tracer.trace(&profile, 25.0, 0.0, 200.0);
        // Horizontal launch at mid-depth: stays flat, no bounces.
        assert_eq!(p.n_surface + p.n_bottom, 0);
        assert!(approx_eq(p.final_depth(), 25.0, 1e-6));
        assert!(approx_eq(p.travel_time_s, 200.0 / 1500.0, 1e-4));
        assert!(approx_eq(p.length_m, 200.0, 0.01));
    }

    #[test]
    fn angled_ray_bounces_in_iso_water() {
        let tracer = RayTracer::new(20.0);
        let profile = Profile::Iso(1500.0);
        // 10° down from 10 m depth: hits bottom after ~56.7 m of range.
        let p = tracer.trace(&profile, 10.0, 10f64.to_radians(), 300.0);
        assert!(p.n_bottom >= 1, "ray must hit the bottom");
        assert!(p.n_surface >= 1, "and come back up past the surface");
        // Path length exceeds horizontal range (zig-zag).
        assert!(p.length_m > 300.0);
    }

    #[test]
    fn iso_eigenray_matches_image_method_delay() {
        let tracer = RayTracer::new(30.0);
        let c = 1500.0;
        let profile = Profile::Iso(c);
        let rays = tracer.eigenrays(&profile, 10.0, 12.0, Meters(150.0), 0.5, 160);
        assert!(!rays.is_empty(), "must find at least the direct eigenray");
        // The earliest eigenray is the direct path: t = √(150² + 2²)/c.
        let want = (150.0f64.powi(2) + 2.0f64.powi(2)).sqrt() / c;
        let got = rays[0].travel_time_s;
        assert!((got - want).abs() < 2e-4, "direct eigenray {got:.6}s vs geometric {want:.6}s");
        // And a surface- or bottom-bounce eigenray should exist too.
        assert!(rays.len() >= 2, "expected bounce eigenrays, got {}", rays.len());
        assert!(rays[1].travel_time_s > rays[0].travel_time_s);
    }

    #[test]
    fn downward_gradient_bends_rays_down() {
        // Sound speed increasing with depth bends rays *upward* (toward the
        // slow side); decreasing with depth bends them downward.
        let tracer = RayTracer { depth_m: 200.0, step_m: 0.5, max_bounces: 0 };
        let faster_down = Profile::Linear { surface: 1480.0, gradient: 0.5 };
        let slower_down = Profile::Linear { surface: 1520.0, gradient: -0.5 };
        let up = tracer.trace(&faster_down, 100.0, 0.0, 400.0);
        let down = tracer.trace(&slower_down, 100.0, 0.0, 400.0);
        assert!(
            up.final_depth() < 99.0,
            "positive gradient should bend the ray up, got z = {}",
            up.final_depth()
        );
        assert!(
            down.final_depth() > 101.0,
            "negative gradient should bend the ray down, got z = {}",
            down.final_depth()
        );
    }

    #[test]
    fn snell_invariant_is_conserved() {
        // cos θ / c(z) must stay constant along a refracted (bounce-free) ray.
        let tracer = RayTracer { depth_m: 500.0, step_m: 0.25, max_bounces: 0 };
        let profile = Profile::Linear { surface: 1490.0, gradient: 0.05 };
        let z0 = 250.0;
        let th0 = 0.05f64;
        let p = tracer.trace(&profile, z0, th0, 600.0);
        assert_eq!(p.n_surface + p.n_bottom, 0, "pick parameters without bounces");
        let inv0 = th0.cos() / profile.at(z0);
        // Recover the local angle from consecutive recorded points.
        let pts = &p.points;
        let (r1, z1) = pts[pts.len() - 2];
        let (r2, z2) = pts[pts.len() - 1];
        let theta_end = ((z2 - z1) / (r2 - r1)).atan();
        let inv_end = theta_end.cos() / profile.at(z2);
        assert!(
            (inv_end / inv0 - 1.0).abs() < 1e-3,
            "Snell invariant drifted: {inv0:.6e} → {inv_end:.6e}"
        );
    }

    #[test]
    fn refraction_changes_eigenray_count_or_timing() {
        // Same geometry, iso vs gradient: travel times must differ measurably
        // (the gradient lengthens/bends the paths).
        let tracer = RayTracer::new(60.0);
        let iso = Profile::Iso(1500.0);
        let grad = Profile::Linear { surface: 1500.0, gradient: -0.3 };
        let a = tracer.eigenrays(&iso, 20.0, 20.0, Meters(400.0), 0.6, 200);
        let b = tracer.eigenrays(&grad, 20.0, 20.0, Meters(400.0), 0.6, 200);
        assert!(!a.is_empty() && !b.is_empty());
        let da = a[0].travel_time_s;
        let db = b[0].travel_time_s;
        assert!((da - db).abs() > 1e-5, "refraction should shift arrival time: {da} vs {db}");
    }

    #[test]
    fn bounce_limit_respected() {
        let tracer = RayTracer { depth_m: 5.0, step_m: 0.25, max_bounces: 3 };
        let p = tracer.trace(&Profile::Iso(1500.0), 2.5, 0.5, 10_000.0);
        assert!(p.n_surface + p.n_bottom <= 4, "tracing must stop at the bounce limit");
    }
}
