//! Geometric spreading loss.

use vab_util::units::{Db, Meters};

/// Spreading geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Spreading {
    /// Deep open water: 20·log10(d) — energy spreads over a sphere.
    Spherical,
    /// Ideal waveguide far field: 10·log10(d).
    Cylindrical,
    /// Shallow-water practical compromise: `k·log10(d)` with k ≈ 15.
    Practical(f64),
    /// The physically-motivated shallow-water law: spherical (20·log10)
    /// out to the `transition_m` range (≈ the water depth, where the
    /// wavefront first fills the waveguide), then `far_k·log10` beyond
    /// (boundary-trapped propagation, far_k ≈ 10–13 depending on bottom
    /// loss). This is the regime that makes hundreds of metres reachable
    /// in a 4 m river.
    Hybrid {
        /// Range at which the waveguide takes over, metres.
        transition_m: f64,
        /// Far-field log-distance coefficient.
        far_k: f64,
    },
}

impl Spreading {
    /// The *local* log-distance coefficient at long range (used for rough
    /// slope reasoning; prefer [`Spreading::loss`] for actual budgets).
    pub fn coefficient(self) -> f64 {
        match self {
            Spreading::Spherical => 20.0,
            Spreading::Cylindrical => 10.0,
            Spreading::Practical(k) => k,
            Spreading::Hybrid { far_k, .. } => far_k,
        }
    }

    /// Spreading loss in dB re 1 m at distance `d` (zero at ≤ 1 m — the
    /// reference distance of source levels).
    pub fn loss(self, d: Meters) -> Db {
        let d = d.value().max(1.0);
        match self {
            Spreading::Spherical => Db(20.0 * d.log10()),
            Spreading::Cylindrical => Db(10.0 * d.log10()),
            Spreading::Practical(k) => Db(k * d.log10()),
            Spreading::Hybrid { transition_m, far_k } => {
                let t = transition_m.max(1.0);
                if d <= t {
                    Db(20.0 * d.log10())
                } else {
                    Db(20.0 * t.log10() + far_k * (d / t).log10())
                }
            }
        }
    }
}

/// One-way transmission loss: spreading plus absorption.
///
/// `TL = k·log10(d) + α·d/1000` — the workhorse of every link budget in the
/// evaluation.
pub fn transmission_loss(spreading: Spreading, alpha_db_per_km: f64, d: Meters) -> Db {
    spreading.loss(d) + Db(alpha_db_per_km * d.value().max(0.0) / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    #[test]
    fn spherical_doubles_amplitude_rule() {
        // 20 log10: ×10 distance → +20 dB.
        let s = Spreading::Spherical;
        assert!(approx_eq(s.loss(Meters(10.0)).value(), 20.0, 1e-9));
        assert!(approx_eq(s.loss(Meters(100.0)).value(), 40.0, 1e-9));
    }

    #[test]
    fn reference_distance_is_zero_loss() {
        for s in [Spreading::Spherical, Spreading::Cylindrical, Spreading::Practical(15.0)] {
            assert_eq!(s.loss(Meters(1.0)).value(), 0.0);
            // Below the reference distance clamps rather than going negative.
            assert_eq!(s.loss(Meters(0.1)).value(), 0.0);
        }
    }

    #[test]
    fn practical_sits_between_cylindrical_and_spherical() {
        let d = Meters(300.0);
        let cyl = Spreading::Cylindrical.loss(d).value();
        let prac = Spreading::Practical(15.0).loss(d).value();
        let sph = Spreading::Spherical.loss(d).value();
        assert!(cyl < prac && prac < sph);
    }

    #[test]
    fn transmission_loss_adds_absorption() {
        let tl = transmission_loss(Spreading::Practical(15.0), 3.6, Meters(300.0));
        let expect = 15.0 * 300f64.log10() + 3.6 * 0.3;
        assert!(approx_eq(tl.value(), expect, 1e-9));
    }

    #[test]
    fn hybrid_is_spherical_near_waveguide_far() {
        let h = Spreading::Hybrid { transition_m: 4.0, far_k: 12.0 };
        // Below transition: pure spherical.
        assert!(approx_eq(h.loss(Meters(2.0)).value(), 20.0 * 2f64.log10(), 1e-9));
        // At the transition the two branches agree (continuity).
        assert!(approx_eq(h.loss(Meters(4.0)).value(), 20.0 * 4f64.log10(), 1e-9));
        // Far: slope is far_k per decade.
        let l30 = h.loss(Meters(30.0)).value();
        let l300 = h.loss(Meters(300.0)).value();
        assert!(approx_eq(l300 - l30, 12.0, 1e-9));
        // And always cheaper than full spherical at long range.
        assert!(l300 < Spreading::Spherical.loss(Meters(300.0)).value());
    }

    #[test]
    fn hybrid_monotonic_across_transition() {
        let h = Spreading::Hybrid { transition_m: 5.0, far_k: 11.0 };
        let mut prev = -1.0;
        for d in [1.0, 2.0, 4.9, 5.0, 5.1, 10.0, 100.0] {
            let l = h.loss(Meters(d)).value();
            assert!(l >= prev, "non-monotonic at {d}");
            prev = l;
        }
    }
}
