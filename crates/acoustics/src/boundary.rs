//! Boundary interactions: sea surface and bottom reflection.

use vab_util::complex::C64;

/// Acoustic properties of a half-space medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Medium {
    /// Density, kg/m³.
    pub density: f64,
    /// Compressional sound speed, m/s.
    pub sound_speed: f64,
}

impl Medium {
    /// Characteristic impedance ρc (Pa·s/m).
    pub fn impedance(&self) -> f64 {
        self.density * self.sound_speed
    }

    /// Water at nominal conditions.
    pub fn water() -> Self {
        Self { density: 1000.0, sound_speed: 1500.0 }
    }

    /// Air (for the water→air pressure-release surface).
    pub fn air() -> Self {
        Self { density: 1.225, sound_speed: 343.0 }
    }

    /// Typical river mud bottom.
    pub fn mud() -> Self {
        Self { density: 1400.0, sound_speed: 1520.0 }
    }

    /// Sandy coastal bottom.
    pub fn sand() -> Self {
        Self { density: 1900.0, sound_speed: 1650.0 }
    }

    /// Rock bottom.
    pub fn rock() -> Self {
        Self { density: 2500.0, sound_speed: 3000.0 }
    }
}

/// Rayleigh plane-wave reflection coefficient at a fluid–fluid interface for
/// a wave in `from` hitting `into` at `grazing_rad` grazing angle (measured
/// from the interface plane).
///
/// Returns a complex coefficient: beyond the critical angle the magnitude is
/// 1 with a phase shift (total internal reflection).
pub fn rayleigh_reflection(from: Medium, into: Medium, grazing_rad: f64) -> C64 {
    let theta = grazing_rad.clamp(1e-6, std::f64::consts::FRAC_PI_2);
    let z1 = from.impedance();
    // Snell: cos θ2 = (c2/c1)·cos θ1 (grazing-angle convention).
    let cos2 = (into.sound_speed / from.sound_speed) * theta.cos();
    if cos2.abs() <= 1.0 {
        let sin2 = (1.0 - cos2 * cos2).sqrt();
        let z2 = into.impedance();
        let num = z2 * theta.sin() - z1 * sin2;
        let den = z2 * theta.sin() + z1 * sin2;
        C64::real(num / den)
    } else {
        // Evanescent transmission: |R| = 1, phase from imaginary sin θ2.
        let sin2_im = (cos2 * cos2 - 1.0).sqrt();
        let z2 = into.impedance();
        let num = C64::new(z2 * theta.sin(), -z1 * sin2_im);
        let den = C64::new(z2 * theta.sin(), z1 * sin2_im);
        num / den
    }
}

/// Surface reflection coefficient with sea-state roughness loss.
///
/// A flat water–air surface is an almost perfect pressure-release reflector
/// (R ≈ −1). Roughness scatters energy out of the coherent path; the
/// coherent loss follows the Rayleigh roughness parameter
/// `Γ = 2·k·σ·sin(θ)` as `R_rough = R_flat · exp(−Γ²/2)`.
///
/// * `wave_height_rms_m` — RMS surface displacement σ
/// * `k` — acoustic wavenumber 2π/λ
pub fn surface_reflection(grazing_rad: f64, k: f64, wave_height_rms_m: f64) -> C64 {
    let flat = rayleigh_reflection(Medium::water(), Medium::air(), grazing_rad);
    let gamma = 2.0 * k * wave_height_rms_m * grazing_rad.sin();
    flat * (-gamma * gamma / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    #[test]
    fn water_air_is_pressure_release() {
        let r = rayleigh_reflection(Medium::water(), Medium::air(), 0.5);
        assert!(r.re < -0.99, "water→air should reflect with R ≈ −1, got {r}");
    }

    #[test]
    fn water_rock_is_strongly_reflective() {
        let r = rayleigh_reflection(Medium::water(), Medium::rock(), 1.2);
        assert!(r.re > 0.3, "hard bottom should reflect strongly, got {r}");
    }

    #[test]
    fn mud_reflects_weaker_than_sand() {
        let g = 0.8;
        let mud = rayleigh_reflection(Medium::water(), Medium::mud(), g).abs();
        let sand = rayleigh_reflection(Medium::water(), Medium::sand(), g).abs();
        assert!(mud < sand, "mud {mud} vs sand {sand}");
    }

    #[test]
    fn beyond_critical_angle_total_reflection() {
        // Water→rock at very shallow grazing: cosθ2 > 1 → |R| = 1.
        let r = rayleigh_reflection(Medium::water(), Medium::rock(), 0.05);
        assert!(approx_eq(r.abs(), 1.0, 1e-9), "|R| = {}", r.abs());
    }

    #[test]
    fn reflection_magnitude_bounded() {
        for g in [0.01, 0.3, 0.8, 1.5] {
            for m in [Medium::air(), Medium::mud(), Medium::sand(), Medium::rock()] {
                let r = rayleigh_reflection(Medium::water(), m, g).abs();
                assert!(r <= 1.0 + 1e-9, "unphysical |R| = {r}");
            }
        }
    }

    #[test]
    fn rough_surface_reduces_coherent_reflection() {
        let k = vab_util::TAU / 0.081; // 18.5 kHz wavenumber
        let calm = surface_reflection(0.3, k, 0.0).abs();
        let rough = surface_reflection(0.3, k, 0.05).abs();
        let very_rough = surface_reflection(0.3, k, 0.25).abs();
        assert!(approx_eq(calm, 1.0, 1e-2));
        assert!(rough < calm);
        assert!(very_rough < 0.1, "heavy sea should kill the coherent path, got {very_rough}");
    }
}
