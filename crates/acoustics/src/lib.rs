//! # vab-acoustics — underwater acoustic channel substrate
//!
//! Physics models for the environments VAB was evaluated in (a river and the
//! coastal ocean): sound speed, frequency-dependent absorption, spreading
//! loss, ambient noise, boundary reflections, an image-method multipath
//! impulse response, and sea-state-driven time variation.
//!
//! All levels follow underwater-acoustics conventions: pressure levels in
//! dB re 1 µPa, noise spectral densities in dB re 1 µPa²/Hz, transmission
//! loss referenced to 1 m.
//!
//! References (standard textbook forms):
//! * Mackenzie (1981) nine-term sound-speed equation.
//! * Thorp (1967) and Francois & Garrison (1982) absorption.
//! * Wenz (1962) ambient-noise curves, Coates' parametric form.
//! * Image method for the shallow-water waveguide (Jensen et al.,
//!   *Computational Ocean Acoustics*).

pub mod absorption;
pub mod boundary;
pub mod channel;
pub mod environment;
pub mod geometry;
pub mod impulsive;
pub mod noise;
pub mod ray;
pub mod soundspeed;
pub mod spreading;

pub use channel::{Arrival, ChannelModel, ImpulseResponse, SurfaceMod};
pub use environment::{Environment, SeaState, WaterKind};
pub use geometry::Position;
pub use impulsive::ImpulsiveNoise;
pub use ray::{RayPath, RayTracer};
