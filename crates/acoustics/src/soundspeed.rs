//! Sound speed in sea water.

/// Mackenzie (1981) nine-term equation for sound speed (m/s).
///
/// Valid for temperature −2…30 °C, salinity 25…40 ppt, depth 0…8000 m; it
/// degrades gracefully outside (we also use it for fresh river water, where
/// the salinity terms nearly vanish and the result lands within a few m/s of
/// dedicated freshwater formulas — irrelevant for link budgets).
///
/// * `temp_c` — temperature in °C
/// * `salinity_ppt` — salinity in parts per thousand
/// * `depth_m` — depth in metres
pub fn mackenzie(temp_c: f64, salinity_ppt: f64, depth_m: f64) -> f64 {
    let t = temp_c;
    let s = salinity_ppt;
    let d = depth_m;
    1448.96 + 4.591 * t - 5.304e-2 * t * t
        + 2.374e-4 * t * t * t
        + 1.340 * (s - 35.0)
        + 1.630e-2 * d
        + 1.675e-7 * d * d
        - 1.025e-2 * t * (s - 35.0)
        - 7.139e-13 * t * d * d * d
}

/// A depth-dependent sound-speed profile.
#[derive(Debug, Clone)]
pub enum Profile {
    /// Constant sound speed (well-mixed shallow water — the VAB regimes).
    Iso(f64),
    /// Linear gradient: speed at surface plus `gradient` (1/s) × depth.
    Linear { surface: f64, gradient: f64 },
}

impl Profile {
    /// Sound speed at `depth_m`.
    pub fn at(&self, depth_m: f64) -> f64 {
        match *self {
            Profile::Iso(c) => c,
            Profile::Linear { surface, gradient } => surface + gradient * depth_m,
        }
    }

    /// Harmonic-mean speed over 0..depth — the right average for travel time.
    pub fn mean_to(&self, depth_m: f64) -> f64 {
        match *self {
            Profile::Iso(c) => c,
            Profile::Linear { surface, gradient } => {
                if gradient.abs() < 1e-12 || depth_m <= 0.0 {
                    surface
                } else {
                    // depth / ∫ dz/c(z)
                    let c1 = surface + gradient * depth_m;
                    gradient * depth_m / (c1 / surface).ln()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    #[test]
    fn mackenzie_reference_point() {
        // Canonical check value: T=10°C, S=35 ppt, D=1000 m → ~1503.4 m/s.
        let c = mackenzie(10.0, 35.0, 1000.0);
        assert!(approx_eq(c, 1503.4, 0.5), "got {c}");
    }

    #[test]
    fn warmer_water_is_faster() {
        assert!(mackenzie(20.0, 35.0, 5.0) > mackenzie(5.0, 35.0, 5.0));
    }

    #[test]
    fn saltier_water_is_faster() {
        assert!(mackenzie(10.0, 35.0, 5.0) > mackenzie(10.0, 0.5, 5.0));
    }

    #[test]
    fn fresh_shallow_water_plausible() {
        // River-like: 15 °C, fresh, 3 m deep → mid-1460s m/s.
        let c = mackenzie(15.0, 0.5, 3.0);
        assert!(c > 1415.0 && c < 1490.0, "got {c}");
    }

    #[test]
    fn iso_profile_is_constant() {
        let p = Profile::Iso(1500.0);
        assert_eq!(p.at(0.0), 1500.0);
        assert_eq!(p.at(100.0), 1500.0);
        assert_eq!(p.mean_to(50.0), 1500.0);
    }

    #[test]
    fn linear_profile_gradient_and_mean() {
        let p = Profile::Linear { surface: 1500.0, gradient: 0.1 };
        assert!(approx_eq(p.at(10.0), 1501.0, 1e-9));
        let m = p.mean_to(10.0);
        assert!(m > 1500.0 && m < 1501.0, "mean {m} should be between endpoints");
    }
}
