//! Impulsive ambient noise — snapping shrimp.
//!
//! Warm shallow water is dominated not by Gaussian wind noise but by the
//! crackle of snapping shrimp: millisecond broadband transients 20–40 dB
//! above the Gaussian floor, arriving as a Poisson process. Impulsive noise
//! is the reason link layers carry interleavers: a single snap wipes out a
//! burst of chips, not a random scattering.
//!
//! The standard engineering model is Bernoulli–Gaussian (a two-state
//! mixture): each sample is background Gaussian with probability `1−p` and
//! high-variance "snap" Gaussian with probability `p`, with snaps arriving
//! in short bursts rather than as isolated samples.

use rand::{Rng, RngExt};
use vab_util::complex::C64;
use vab_util::rng::complex_gaussian;

/// Snapping-shrimp (Bernoulli–Gaussian burst) noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpulsiveNoise {
    /// Background (Gaussian) noise sigma.
    pub sigma_bg: f64,
    /// Snap amplitude relative to background (20–40 dB typical → 10–100×).
    pub snap_ratio: f64,
    /// Mean snaps per second.
    pub snap_rate_hz: f64,
    /// Snap duration, seconds (shrimp snaps are ~0.3–1 ms).
    pub snap_duration_s: f64,
}

impl ImpulsiveNoise {
    /// A lively tropical bottom: 30 dB snaps, 50 snaps/s, 0.5 ms each.
    pub fn shrimp_colony(sigma_bg: f64) -> Self {
        Self { sigma_bg, snap_ratio: 31.6, snap_rate_hz: 50.0, snap_duration_s: 0.5e-3 }
    }

    /// Sparse snapping: 5 snaps/s (temperate water near structure).
    pub fn sparse(sigma_bg: f64) -> Self {
        Self { sigma_bg, snap_ratio: 31.6, snap_rate_hz: 5.0, snap_duration_s: 0.5e-3 }
    }

    /// Fraction of samples inside a snap.
    pub fn duty(&self) -> f64 {
        (self.snap_rate_hz * self.snap_duration_s).min(1.0)
    }

    /// Average noise power relative to pure background power.
    pub fn power_penalty_lin(&self) -> f64 {
        let d = self.duty();
        (1.0 - d) + d * self.snap_ratio * self.snap_ratio
    }

    /// Generates `n` complex noise samples at sample rate `fs`.
    ///
    /// Snap starts arrive as a Poisson process (geometric inter-arrival in
    /// samples); each snap holds for its duration. Deterministic under a
    /// seeded RNG.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, fs: f64, rng: &mut R) -> Vec<C64> {
        let mut out = Vec::with_capacity(n);
        let p_start = (self.snap_rate_hz / fs).min(1.0);
        let snap_len = (self.snap_duration_s * fs).round().max(1.0) as usize;
        let mut in_snap = 0usize;
        for _ in 0..n {
            if in_snap == 0 && rng.random::<f64>() < p_start {
                in_snap = snap_len;
            }
            let sigma = if in_snap > 0 {
                in_snap -= 1;
                self.sigma_bg * self.snap_ratio
            } else {
                self.sigma_bg
            };
            out.push(complex_gaussian(rng, sigma));
        }
        out
    }

    /// Adds this noise to a signal in place.
    pub fn corrupt<R: Rng + ?Sized>(&self, signal: &mut [C64], fs: f64, rng: &mut R) {
        let noise = self.generate(signal.len(), fs, rng);
        for (s, n) in signal.iter_mut().zip(noise) {
            *s += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::rng::seeded;
    use vab_util::stats::RunningStats;

    #[test]
    fn duty_and_penalty_arithmetic() {
        let n = ImpulsiveNoise::shrimp_colony(1.0);
        // 50 snaps/s × 0.5 ms = 2.5 % duty.
        assert!((n.duty() - 0.025).abs() < 1e-12);
        // Power penalty = 0.975 + 0.025·1000 ≈ 26× (14 dB!).
        assert!((n.power_penalty_lin() - 25.95).abs() < 0.5, "{}", n.power_penalty_lin());
    }

    #[test]
    fn generated_power_matches_theory() {
        let model = ImpulsiveNoise::shrimp_colony(1.0);
        let mut rng = seeded(1);
        let fs = 16_000.0;
        let samples = model.generate(400_000, fs, &mut rng);
        let mean_pow: f64 = samples.iter().map(|c| c.norm_sq()).sum::<f64>() / samples.len() as f64;
        let want = model.power_penalty_lin();
        assert!((mean_pow / want - 1.0).abs() < 0.25, "measured {mean_pow:.1} vs theory {want:.1}");
    }

    #[test]
    fn snaps_are_bursty_not_scattered() {
        let model = ImpulsiveNoise::shrimp_colony(1.0);
        let mut rng = seeded(2);
        let fs = 16_000.0;
        let samples = model.generate(200_000, fs, &mut rng);
        // Classify loud samples (above 5σ of background).
        let loud: Vec<bool> = samples.iter().map(|c| c.abs() > 5.0).collect();
        let n_loud = loud.iter().filter(|&&b| b).count();
        assert!(n_loud > 1000, "expected snaps, got {n_loud} loud samples");
        // Conditional probability P(loud[i+1] | loud[i]) must be far above
        // the marginal P(loud) — that is burstiness.
        let mut pairs = 0;
        let mut follows = 0;
        for w in loud.windows(2) {
            if w[0] {
                pairs += 1;
                if w[1] {
                    follows += 1;
                }
            }
        }
        let conditional = follows as f64 / pairs as f64;
        let marginal = n_loud as f64 / loud.len() as f64;
        assert!(
            conditional > 10.0 * marginal,
            "snaps not bursty: P(loud|loud)={conditional:.3} vs P(loud)={marginal:.3}"
        );
    }

    #[test]
    fn background_only_when_rate_is_zero() {
        let model = ImpulsiveNoise { snap_rate_hz: 0.0, ..ImpulsiveNoise::sparse(2.0) };
        let mut rng = seeded(3);
        let samples = model.generate(50_000, 16_000.0, &mut rng);
        let mut s = RunningStats::new();
        for c in &samples {
            s.push(c.norm_sq());
        }
        // Mean power = σ² = 4.
        assert!((s.mean() - 4.0).abs() < 0.2, "mean power {}", s.mean());
    }

    #[test]
    fn corrupt_adds_in_place() {
        let model = ImpulsiveNoise::sparse(0.1);
        let mut rng = seeded(4);
        let mut signal = vec![C64::real(1.0); 1000];
        model.corrupt(&mut signal, 16_000.0, &mut rng);
        assert!(signal.iter().any(|c| (c.re - 1.0).abs() > 1e-6));
    }
}
