//! Deployment environments: the river and ocean settings of the VAB
//! evaluation, bundled into one struct the simulator can query.

use crate::absorption::francois_garrison_db_per_km;
use crate::boundary::Medium;
use crate::noise::{band_level, total_psd};
use crate::soundspeed::mackenzie;
use crate::spreading::{transmission_loss, Spreading};
use vab_util::units::{Db, Hertz, Meters};

/// Fresh vs. salt water — switches absorption regime and presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaterKind {
    /// Low-salinity river water.
    Fresh,
    /// Coastal sea water.
    Salt,
}

/// Douglas sea state 0–4 (the range a small-boat deployment survives),
/// mapped to RMS surface displacement and wind speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeaState {
    /// Mirror-calm.
    Calm,
    /// Ripples (SS1).
    Rippled,
    /// Small wavelets (SS2).
    Smooth,
    /// Slight waves (SS3).
    Slight,
    /// Moderate waves (SS4).
    Moderate,
}

impl SeaState {
    /// RMS surface displacement in metres (≈ significant wave height / 4).
    pub fn wave_height_rms_m(self) -> f64 {
        match self {
            SeaState::Calm => 0.0,
            SeaState::Rippled => 0.025,
            SeaState::Smooth => 0.075,
            SeaState::Slight => 0.22,
            SeaState::Moderate => 0.47,
        }
    }

    /// Representative wind speed in m/s.
    pub fn wind_mps(self) -> f64 {
        match self {
            SeaState::Calm => 0.5,
            SeaState::Rippled => 2.0,
            SeaState::Smooth => 4.0,
            SeaState::Slight => 7.0,
            SeaState::Moderate => 10.0,
        }
    }

    /// Doppler spread of surface-interacting paths, as a fraction of the
    /// carrier — driven by surface particle velocity ~ wave height.
    pub fn doppler_spread_hz(self, carrier: Hertz) -> f64 {
        // v_surface ≈ π·H_rms / T_wave; take T_wave ≈ 3–6 s scaled by state.
        let v = match self {
            SeaState::Calm => 0.0,
            SeaState::Rippled => 0.03,
            SeaState::Smooth => 0.08,
            SeaState::Slight => 0.20,
            SeaState::Moderate => 0.40,
        };
        2.0 * v / 1500.0 * carrier.value()
    }

    /// Dominant surface-wave frequency, Hz (small ripples chop fast, big
    /// waves roll slowly).
    pub fn wave_freq_hz(self) -> f64 {
        match self {
            SeaState::Calm => 0.0,
            SeaState::Rippled => 2.0,
            SeaState::Smooth => 1.2,
            SeaState::Slight => 0.6,
            SeaState::Moderate => 0.4,
        }
    }

    /// All states, for sweeps.
    pub fn all() -> [SeaState; 5] {
        [SeaState::Calm, SeaState::Rippled, SeaState::Smooth, SeaState::Slight, SeaState::Moderate]
    }
}

/// A complete acoustic environment description.
#[derive(Debug, Clone)]
pub struct Environment {
    /// Fresh or salt water.
    pub kind: WaterKind,
    /// Water column depth, m.
    pub depth: Meters,
    /// Water temperature, °C.
    pub temp_c: f64,
    /// Salinity, ppt.
    pub salinity_ppt: f64,
    /// pH (absorption model input).
    pub ph: f64,
    /// Shipping activity factor in [0, 1] for the noise model.
    pub shipping: f64,
    /// Sea state (waves + wind noise + Doppler).
    pub sea_state: SeaState,
    /// Bottom material.
    pub bottom: Medium,
    /// Spreading law.
    pub spreading: Spreading,
}

impl Environment {
    /// The river evaluation setting: shallow, fresh, calm, quiet, mud bottom.
    /// Modeled on the Charles River deployments of the MIT underwater
    /// backscatter line of work.
    pub fn river() -> Self {
        Self {
            kind: WaterKind::Fresh,
            depth: Meters(4.0),
            temp_c: 15.0,
            salinity_ppt: 0.5,
            ph: 7.0,
            shipping: 0.2,
            sea_state: SeaState::Rippled,
            bottom: Medium::mud(),
            spreading: Spreading::Hybrid { transition_m: 4.0, far_k: 12.0 },
        }
    }

    /// The ocean evaluation setting: coastal salt water, sandy bottom,
    /// moderate shipping, configurable sea state.
    pub fn ocean(sea_state: SeaState) -> Self {
        Self {
            kind: WaterKind::Salt,
            depth: Meters(12.0),
            temp_c: 12.0,
            salinity_ppt: 35.0,
            ph: 8.0,
            shipping: 0.5,
            sea_state,
            bottom: Medium::sand(),
            spreading: Spreading::Hybrid { transition_m: 12.0, far_k: 13.0 },
        }
    }

    /// Sound speed at mid-column.
    pub fn sound_speed(&self) -> f64 {
        mackenzie(self.temp_c, self.salinity_ppt, self.depth.value() / 2.0)
    }

    /// Absorption coefficient at `f`, dB/km (Francois–Garrison — valid for
    /// both the fresh and salt presets).
    pub fn absorption_db_per_km(&self, f: Hertz) -> f64 {
        francois_garrison_db_per_km(
            f,
            self.temp_c,
            self.salinity_ppt,
            self.depth.value() / 2.0,
            self.ph,
        )
    }

    /// One-way transmission loss at `f` over distance `d` (dB re 1 m).
    pub fn transmission_loss(&self, f: Hertz, d: Meters) -> Db {
        transmission_loss(self.spreading, self.absorption_db_per_km(f), d)
    }

    /// Ambient-noise PSD at `f` (dB re 1 µPa²/Hz).
    pub fn noise_psd(&self, f: Hertz) -> Db {
        total_psd(f, self.shipping, self.sea_state.wind_mps())
    }

    /// Ambient-noise level in a receiver band centred at `f`.
    pub fn noise_level(&self, f: Hertz, bandwidth: Hertz) -> Db {
        band_level(self.noise_psd(f), bandwidth)
    }

    /// Acoustic wavelength at `f`.
    pub fn wavelength(&self, f: Hertz) -> Meters {
        Meters(self.sound_speed() / f.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: Hertz = Hertz(18_500.0);

    #[test]
    fn river_absorbs_less_than_ocean() {
        let r = Environment::river().absorption_db_per_km(F);
        let o = Environment::ocean(SeaState::Smooth).absorption_db_per_km(F);
        assert!(r < o / 5.0, "river {r} vs ocean {o}");
    }

    #[test]
    fn tl_monotonic_in_distance() {
        let env = Environment::ocean(SeaState::Smooth);
        let mut prev = f64::NEG_INFINITY;
        for d in [1.0, 10.0, 50.0, 100.0, 300.0, 1000.0] {
            let tl = env.transmission_loss(F, Meters(d)).value();
            assert!(tl > prev, "TL not monotonic at {d} m");
            prev = tl;
        }
    }

    #[test]
    fn tl_at_300m_is_tens_of_db() {
        // Sanity for the headline range: one-way TL ~ 38 dB (15·log10(300) ≈ 37).
        let env = Environment::river();
        let tl = env.transmission_loss(F, Meters(300.0)).value();
        assert!(tl > 30.0 && tl < 45.0, "got {tl}");
    }

    #[test]
    fn rougher_sea_is_noisier() {
        let calm = Environment::ocean(SeaState::Calm).noise_psd(F).value();
        let rough = Environment::ocean(SeaState::Moderate).noise_psd(F).value();
        assert!(rough > calm + 3.0, "calm {calm}, rough {rough}");
    }

    #[test]
    fn sea_state_wave_heights_increase() {
        let all = SeaState::all();
        for w in all.windows(2) {
            assert!(w[0].wave_height_rms_m() <= w[1].wave_height_rms_m());
            assert!(w[0].wind_mps() < w[1].wind_mps());
        }
    }

    #[test]
    fn doppler_spread_scales_with_carrier_and_state() {
        assert_eq!(SeaState::Calm.doppler_spread_hz(F), 0.0);
        let slight = SeaState::Slight.doppler_spread_hz(F);
        let moderate = SeaState::Moderate.doppler_spread_hz(F);
        assert!(slight > 0.0 && moderate > slight);
        assert!(SeaState::Moderate.doppler_spread_hz(Hertz(37_000.0)) > moderate);
    }

    #[test]
    fn sound_speeds_plausible() {
        let r = Environment::river().sound_speed();
        let o = Environment::ocean(SeaState::Calm).sound_speed();
        assert!(r > 1400.0 && r < 1500.0, "river {r}");
        assert!(o > 1480.0 && o < 1520.0, "ocean {o}");
    }

    #[test]
    fn wavelength_at_carrier() {
        let lam = Environment::ocean(SeaState::Calm).wavelength(F).value();
        assert!(lam > 0.07 && lam < 0.09, "λ = {lam}");
    }
}
