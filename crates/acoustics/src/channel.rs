//! Multipath channel: image-method arrivals and signal application.
//!
//! The shallow-water column (surface at z = 0, bottom at z = depth) acts as
//! a waveguide. The image method enumerates eigenray families by mirroring
//! the source across the two boundaries; each arrival carries a delay, a
//! complex amplitude (spreading + absorption + boundary losses) and bounce
//! counts. Surface-interacting arrivals pick up sea-state-dependent Doppler.
//!
//! Two application paths:
//! * **Passband** ([`ImpulseResponse::apply_passband`]): real waveform in,
//!   fractional-delayed scaled copies out. Used by the DSP validation runs.
//! * **Complex baseband** ([`ImpulseResponse::apply_baseband`]): complex
//!   envelope around the carrier; each tap contributes a complex gain
//!   `a·e^{-j2πf₀τ}` plus a per-arrival Doppler rotation. Used by the Monte
//!   Carlo engine.

use crate::boundary::{rayleigh_reflection, surface_reflection, Medium};
use crate::environment::Environment;
use crate::geometry::Position;
use rand::{Rng, RngExt};
use vab_util::complex::C64;
use vab_util::resample::fractional_delay;
use vab_util::units::{Hertz, Meters};
use vab_util::TAU;

/// One eigenray arrival.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Propagation delay, seconds.
    pub delay_s: f64,
    /// Complex pressure amplitude relative to the source level at 1 m
    /// (spreading, absorption and boundary reflections included).
    pub gain: C64,
    /// Number of surface bounces along the path.
    pub n_surface: u32,
    /// Number of bottom bounces along the path.
    pub n_bottom: u32,
    /// Path length, metres.
    pub path_m: f64,
    /// Surface-wave phase modulation of this arrival (zero for the
    /// direct/bottom-only paths in a static geometry).
    pub surface_mod: SurfaceMod,
}

/// Bounded sinusoidal phase modulation impressed by moving surface waves:
/// `φ(t) = β·sin(2π·f·t + φ₀)`.
///
/// A *statically deployed* node under ripples does not see sustained
/// frequency offsets — the surface displaces each bounce point by at most
/// the wave height, so the path-phase excursion is bounded by the Rayleigh
/// roughness parameter β = 2kσ·sin θ (per bounce). The effective Doppler
/// spread is ≈ β·f_wave.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SurfaceMod {
    /// Peak phase excursion, radians.
    pub beta_rad: f64,
    /// Dominant surface-wave frequency, Hz.
    pub freq_hz: f64,
    /// Random initial phase of the wave, radians.
    pub phi_rad: f64,
}

impl SurfaceMod {
    /// A static (no-motion) path.
    pub const STATIC: SurfaceMod = SurfaceMod { beta_rad: 0.0, freq_hz: 0.0, phi_rad: 0.0 };

    /// Instantaneous extra phase at time `t` seconds.
    #[inline]
    pub fn phase_at(&self, t: f64) -> f64 {
        if self.beta_rad == 0.0 {
            0.0
        } else {
            self.beta_rad * (TAU * self.freq_hz * t + self.phi_rad).sin()
        }
    }

    /// True when the path does not move.
    pub fn is_static(&self) -> bool {
        self.beta_rad == 0.0
    }

    /// Effective (RMS-ish) Doppler spread β·f of this modulation, Hz.
    pub fn doppler_spread_hz(&self) -> f64 {
        self.beta_rad * self.freq_hz
    }
}

impl Arrival {
    /// True for the direct (no-bounce) path.
    pub fn is_direct(&self) -> bool {
        self.n_surface == 0 && self.n_bottom == 0
    }
}

/// Image-method channel between two fixed points in an [`Environment`].
#[derive(Debug, Clone)]
pub struct ChannelModel {
    env: Environment,
    tx: Position,
    rx: Position,
    carrier: Hertz,
    /// Maximum total bounce count to enumerate.
    max_bounces: u32,
    /// Arrivals weaker than this fraction of the direct path are dropped.
    amplitude_floor: f64,
    /// Coherent loss per boundary interaction from non-specular scattering,
    /// dB (applied on top of the Rayleigh reflection coefficient).
    bounce_scattering_db: f64,
}

/// Why a channel geometry is unusable by the image method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeometryError {
    /// A coordinate or the carrier is NaN/infinite.
    NonFinite,
    /// The water column has zero or negative depth.
    BadDepth {
        /// The offending depth, metres.
        depth_m: f64,
    },
    /// An endpoint lies outside the water column (above the surface or
    /// below the bottom).
    OutOfColumn {
        /// The offending endpoint depth, metres (positive down).
        z_m: f64,
        /// The column depth, metres.
        depth_m: f64,
    },
    /// The carrier frequency is not positive.
    BadCarrier {
        /// The offending carrier, Hz.
        carrier_hz: f64,
    },
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::NonFinite => write!(f, "non-finite coordinate or carrier"),
            GeometryError::BadDepth { depth_m } => {
                write!(f, "water column depth {depth_m} m must be positive")
            }
            GeometryError::OutOfColumn { z_m, depth_m } => {
                write!(f, "endpoint at z = {z_m} m outside the 0–{depth_m} m water column")
            }
            GeometryError::BadCarrier { carrier_hz } => {
                write!(f, "carrier {carrier_hz} Hz must be positive")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

impl ChannelModel {
    /// Creates a channel between `tx` and `rx` at carrier `f`.
    ///
    /// Infallible by construction for the scenario builders (which only
    /// produce in-column geometries); external callers with untrusted
    /// coordinates should prefer [`ChannelModel::try_new`].
    pub fn new(env: Environment, tx: Position, rx: Position, carrier: Hertz) -> Self {
        Self {
            env,
            tx,
            rx,
            carrier,
            max_bounces: 4,
            amplitude_floor: 1e-3,
            bounce_scattering_db: 2.0,
        }
    }

    /// [`ChannelModel::new`] with the geometry validated: coordinates and
    /// carrier finite, depth positive, both endpoints inside the water
    /// column. The image method silently produces nonsense (or NaN delays)
    /// on such inputs, so untrusted deployment descriptions go through
    /// here.
    pub fn try_new(
        env: Environment,
        tx: Position,
        rx: Position,
        carrier: Hertz,
    ) -> Result<Self, GeometryError> {
        let depth = env.depth.value();
        let coords = [tx.x, tx.y, tx.z, rx.x, rx.y, rx.z, depth, carrier.value()];
        if coords.iter().any(|v| !v.is_finite()) {
            return Err(GeometryError::NonFinite);
        }
        if depth <= 0.0 {
            return Err(GeometryError::BadDepth { depth_m: depth });
        }
        for z in [tx.z, rx.z] {
            if !(0.0..=depth).contains(&z) {
                return Err(GeometryError::OutOfColumn { z_m: z, depth_m: depth });
            }
        }
        if carrier.value() <= 0.0 {
            return Err(GeometryError::BadCarrier { carrier_hz: carrier.value() });
        }
        Ok(Self::new(env, tx, rx, carrier))
    }

    /// Overrides the per-bounce scattering loss (default 2 dB/bounce).
    pub fn with_bounce_scattering_db(mut self, db: f64) -> Self {
        self.bounce_scattering_db = db;
        self
    }

    /// Sets the bounce-enumeration limit (default 4).
    pub fn with_max_bounces(mut self, n: u32) -> Self {
        self.max_bounces = n;
        self
    }

    /// Environment reference.
    pub fn environment(&self) -> &Environment {
        &self.env
    }

    /// Direct-path distance.
    pub fn direct_range(&self) -> Meters {
        self.tx.distance_to(&self.rx)
    }

    /// Enumerates eigenray arrivals via the image method.
    ///
    /// `rng` supplies the per-arrival Doppler draw for surface paths; pass a
    /// seeded RNG for reproducibility.
    pub fn arrivals<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Arrival> {
        let c = self.env.sound_speed();
        let depth = self.env.depth.value();
        let alpha = self.env.absorption_db_per_km(self.carrier);
        let spreading = self.env.spreading;
        let lambda = c / self.carrier.value();
        let k_wave = TAU / lambda;
        let sigma_h = self.env.sea_state.wave_height_rms_m();
        let wave_freq = self.env.sea_state.wave_freq_hz();
        let scatter_amp = 10f64.powf(-self.bounce_scattering_db / 20.0);

        let horiz = self.tx.horizontal_range(&self.rx).value().max(1e-6);
        let zs = self.tx.z;
        let zr = self.rx.z;

        let mut out = Vec::new();
        let direct_len = self.tx.distance_to(&self.rx).value().max(1e-6);

        // Image method for a two-boundary waveguide. For order n ≥ 0 there
        // are four image families; their vertical offsets are the classic
        //   z1 = 2nD + zr − zs   (n_s = n,   n_b = n)
        //   z2 = 2nD + zr + zs   (n_s = n+1, n_b = n)    [first bounce: surface]
        //   z3 = 2(n+1)D − zr − zs (n_s = n, n_b = n+1)  [first bounce: bottom]
        //   z4 = 2(n+1)D − zr + zs (n_s = n+1, n_b = n+1)
        for n in 0..=self.max_bounces {
            let families: [(f64, u32, u32); 4] = [
                (2.0 * n as f64 * depth + zr - zs, n, n),
                (2.0 * n as f64 * depth + zr + zs, n + 1, n),
                (2.0 * (n + 1) as f64 * depth - zr - zs, n, n + 1),
                (2.0 * (n + 1) as f64 * depth - zr + zs, n + 1, n + 1),
            ];
            for &(dz, n_s, n_b) in &families {
                if n_s + n_b > self.max_bounces {
                    continue;
                }
                if n == 0 && n_s == 0 && n_b == 0 && dz.abs() < 1e-12 && (zr - zs).abs() > 1e-12 {
                    // degenerate guard; the direct path is family 1 at n = 0
                }
                let path = (horiz * horiz + dz * dz).sqrt().max(1e-6);
                let grazing = (dz.abs() / horiz).atan();

                // Spreading (amplitude) + absorption along the path.
                let spread_amp = 10f64.powf(-spreading.loss(Meters(path)).value() / 20.0);
                let absorb_amp = 10f64.powf(-alpha * path / 1000.0 / 20.0);

                // Boundary losses.
                let mut refl = C64::ONE;
                if n_s > 0 {
                    let rs = surface_reflection(grazing, k_wave, sigma_h);
                    for _ in 0..n_s {
                        refl *= rs;
                    }
                }
                if n_b > 0 {
                    let rb = rayleigh_reflection(Medium::water(), self.env.bottom, grazing);
                    for _ in 0..n_b {
                        refl *= rb;
                    }
                }

                // Non-specular scattering at each boundary interaction
                // removes energy from the coherent path (real boundaries
                // are never the ideal mirrors of the image method).
                let scatter = scatter_amp.powi((n_s + n_b) as i32);
                let gain = refl * (spread_amp * absorb_amp * scatter);
                if gain.abs() < self.amplitude_floor * direct_amp(direct_len, spreading, alpha) {
                    continue;
                }

                // Surface motion: only surface-touching paths move in a
                // static geometry. The per-bounce phase excursion is the
                // Rayleigh roughness parameter; bounces accumulate as a
                // random walk (√n).
                let surface_mod = if n_s > 0 && sigma_h > 0.0 {
                    let beta = 2.0 * k_wave * sigma_h * grazing.sin() * (n_s as f64).sqrt();
                    SurfaceMod {
                        beta_rad: beta,
                        freq_hz: wave_freq,
                        phi_rad: rng.random::<f64>() * TAU,
                    }
                } else {
                    SurfaceMod::STATIC
                };

                out.push(Arrival {
                    delay_s: path / c,
                    gain,
                    n_surface: n_s,
                    n_bottom: n_b,
                    path_m: path,
                    surface_mod,
                });
            }
        }
        out.sort_by(|a, b| a.delay_s.total_cmp(&b.delay_s));
        out.dedup_by(|a, b| {
            (a.delay_s - b.delay_s).abs() < 1e-9
                && a.n_surface == b.n_surface
                && a.n_bottom == b.n_bottom
        });
        out
    }

    /// Builds a sampled impulse response at rate `fs`.
    pub fn impulse_response<R: Rng + ?Sized>(&self, fs: f64, rng: &mut R) -> ImpulseResponse {
        ImpulseResponse { arrivals: self.arrivals(rng), fs, carrier: self.carrier }
    }
}

fn direct_amp(path: f64, spreading: crate::spreading::Spreading, alpha: f64) -> f64 {
    10f64.powf(-spreading.loss(Meters(path)).value() / 20.0)
        * 10f64.powf(-alpha * path / 1000.0 / 20.0)
}

/// Conjugation efficiency of a Van Atta retrodirective bounce path: the
/// fraction of a boundary-interacting arrival's power the array re-launches
/// coherently back along its own path. The direct path retro-reflects with
/// unit efficiency.
pub const RETRO_CONJ_EFF: f64 = 0.6;

/// The Van Atta round trip as a single *diagonal* channel.
///
/// A retrodirective node conjugates each arrival's phase, so every path
/// retraces itself: the round trip collapses to real positive taps
/// `η·|aᵢ|²` at delays `2τᵢ` (time-reversal property), pre-rotated so the
/// carrier phase the baseband application adds cancels out. Convolving the
/// one-way channel twice would instead create cross-path terms (down path
/// i, up path j) that a real Van Atta scatters away from the reader.
/// Surface motion is traversed twice, so the phase excursion doubles.
pub fn retro_round_trip(arrivals: &[Arrival], carrier: Hertz) -> Vec<Arrival> {
    arrivals
        .iter()
        .map(|a| {
            let eff = if a.is_direct() { 1.0 } else { RETRO_CONJ_EFF };
            let power_gain = eff * a.gain.norm_sq();
            let g = C64::real(power_gain) * C64::cis(TAU * carrier.value() * 2.0 * a.delay_s);
            Arrival {
                gain: g,
                delay_s: 2.0 * a.delay_s,
                surface_mod: SurfaceMod { beta_rad: 2.0 * a.surface_mod.beta_rad, ..a.surface_mod },
                ..*a
            }
        })
        .collect()
}

/// A sampled multipath impulse response ready to apply to waveforms.
#[derive(Debug, Clone)]
pub struct ImpulseResponse {
    arrivals: Vec<Arrival>,
    fs: f64,
    carrier: Hertz,
}

impl ImpulseResponse {
    /// Builds directly from arrivals (used by tests and the fading model).
    pub fn from_arrivals(arrivals: Vec<Arrival>, fs: f64, carrier: Hertz) -> Self {
        Self { arrivals, fs, carrier }
    }

    /// The arrival list, sorted by delay.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Sample rate the response was built for.
    pub fn sample_rate(&self) -> f64 {
        self.fs
    }

    /// Carrier frequency the response was built for.
    pub fn carrier(&self) -> Hertz {
        self.carrier
    }

    /// Number of baseband taps needed to represent the response as an FIR
    /// vector: the last arrival's integer delay plus interpolation slack.
    pub fn tap_count(&self) -> usize {
        let max_delay = self.arrivals.last().map_or(0.0, |a| a.delay_s);
        (max_delay * self.fs).ceil() as usize + 2
    }

    /// Samples the response as a baseband FIR tap vector with every
    /// surface-motion rotation **frozen at time `t`** — one snapshot of
    /// the time-varying impulse response. A bank of these snapshots is
    /// what the replay substrate stores; convolving with taps interpolated
    /// between snapshots reproduces [`ImpulseResponse::apply_baseband`] to
    /// within the snapshot spacing.
    ///
    /// The tap placement mirrors `apply_baseband`'s input-side linear
    /// interpolation exactly, so a static channel replayed through these
    /// taps matches the synthetic application to FFT rounding.
    pub fn baseband_taps_at(&self, t: f64) -> Vec<C64> {
        let mut taps = vec![C64::ZERO; self.tap_count().max(1)];
        for a in &self.arrivals {
            let tap = a.gain * C64::cis(-TAU * self.carrier.value() * a.delay_s);
            let rot = if a.surface_mod.is_static() {
                C64::ONE
            } else {
                C64::cis(a.surface_mod.phase_at(t))
            };
            let g = tap * rot;
            let d = a.delay_s * self.fs;
            let di = d.floor() as usize;
            let frac = d - di as f64;
            // apply_baseband interpolates on the input (contribution of
            // x[i] and x[i+1] lands at i + ⌊d⌋), which is tap weight
            // (1−frac) at ⌊d⌋ and frac at ⌊d⌋−1.
            if di < taps.len() {
                taps[di] += g.scale(1.0 - frac);
            }
            if frac != 0.0 && di >= 1 && di - 1 < taps.len() {
                taps[di - 1] += g.scale(frac);
            }
        }
        taps
    }

    /// Delay spread (last minus first arrival), seconds. Zero when fewer
    /// than two arrivals survive.
    pub fn delay_spread(&self) -> f64 {
        match (self.arrivals.first(), self.arrivals.last()) {
            (Some(f), Some(l)) => l.delay_s - f.delay_s,
            _ => 0.0,
        }
    }

    /// Coherent sum of tap gains at the carrier — the narrowband channel
    /// transfer coefficient H(f₀).
    pub fn narrowband_gain(&self) -> C64 {
        self.arrivals
            .iter()
            .map(|a| a.gain * C64::cis(-TAU * self.carrier.value() * a.delay_s))
            .sum()
    }

    /// Applies the channel to a **real passband** waveform sampled at the
    /// response's rate. Doppler is ignored here (used for calm-water DSP
    /// validation, where it is negligible over a packet).
    pub fn apply_passband(&self, x: &[f64]) -> Vec<f64> {
        if self.arrivals.is_empty() || x.is_empty() {
            return vec![0.0; x.len()];
        }
        let max_delay = self.arrivals.last().map_or(0.0, |a| a.delay_s);
        let out_len = x.len() + (max_delay * self.fs).ceil() as usize + 40;
        let mut y = vec![0.0; out_len];
        for a in &self.arrivals {
            // A real reflection coefficient scales; a complex one (total
            // internal reflection) is approximated by its real projection at
            // the carrier — exact for the passband CW case.
            let delayed = fractional_delay(x, a.delay_s * self.fs, 32);
            let scale_re = a.gain.re;
            let scale_im = a.gain.im;
            if scale_im.abs() < 1e-12 {
                for (i, v) in delayed.iter().enumerate() {
                    if i < out_len {
                        y[i] += scale_re * v;
                    }
                }
            } else {
                // Apply the complex gain as magnitude × extra phase delay at
                // the carrier: Δτ = −arg/2πf₀.
                let mag = a.gain.abs();
                let extra = -a.gain.arg() / (TAU * self.carrier.value());
                let shifted = fractional_delay(x, (a.delay_s + extra).max(0.0) * self.fs, 32);
                for (i, v) in shifted.iter().enumerate() {
                    if i < out_len {
                        y[i] += mag * v;
                    }
                }
            }
        }
        y
    }

    /// Applies the channel to a **complex baseband** envelope around the
    /// carrier. Each tap contributes `gain·e^{-j2πf₀τ}` with the envelope
    /// delayed by τ, and surface taps rotate at their Doppler shift.
    pub fn apply_baseband(&self, x: &[C64]) -> Vec<C64> {
        if self.arrivals.is_empty() || x.is_empty() {
            return vec![C64::ZERO; x.len()];
        }
        let max_delay = self.arrivals.last().map_or(0.0, |a| a.delay_s);
        let out_len = x.len() + (max_delay * self.fs).ceil() as usize + 2;
        let mut y = vec![C64::ZERO; out_len];
        for a in &self.arrivals {
            let tap = a.gain * C64::cis(-TAU * self.carrier.value() * a.delay_s);
            let d = a.delay_s * self.fs;
            let di = d.floor() as usize;
            let frac = d - di as f64;
            for (i, &xi) in x.iter().enumerate() {
                // Linear-interp fractional delay is fine at baseband where
                // the envelope is heavily oversampled.
                let contrib = if frac == 0.0 {
                    xi
                } else if i + 1 < x.len() {
                    xi * (1.0 - frac) + x[i + 1] * frac
                } else {
                    xi * (1.0 - frac)
                };
                let idx = i + di;
                if idx < out_len {
                    let rot = if a.surface_mod.is_static() {
                        C64::ONE
                    } else {
                        C64::cis(a.surface_mod.phase_at(idx as f64 / self.fs))
                    };
                    y[idx] += tap * rot * contrib;
                }
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::{Environment, SeaState};
    use vab_util::rng::seeded;

    const F: Hertz = Hertz(18_500.0);

    fn river_channel(range: f64) -> ChannelModel {
        ChannelModel::new(
            Environment::river(),
            Position::new(0.0, 0.0, 2.0),
            Position::new(range, 0.0, 2.0),
            F,
        )
    }

    #[test]
    fn direct_path_is_first_and_strongest() {
        let mut rng = seeded(1);
        let arr = river_channel(50.0).arrivals(&mut rng);
        assert!(!arr.is_empty());
        assert!(arr[0].is_direct());
        let direct = arr[0].gain.abs();
        for a in &arr[1..] {
            assert!(a.gain.abs() <= direct + 1e-12, "bounce path louder than direct");
        }
    }

    #[test]
    fn direct_delay_matches_geometry() {
        let mut rng = seeded(2);
        let ch = river_channel(100.0);
        let arr = ch.arrivals(&mut rng);
        let c = ch.environment().sound_speed();
        let want = 100.0 / c;
        assert!((arr[0].delay_s - want).abs() < 1e-6);
    }

    #[test]
    fn multipath_exists_in_shallow_water() {
        let mut rng = seeded(3);
        let arr = river_channel(50.0).arrivals(&mut rng);
        assert!(arr.len() >= 3, "shallow water must produce bounce paths, got {}", arr.len());
        assert!(arr.iter().any(|a| a.n_surface > 0));
        assert!(arr.iter().any(|a| a.n_bottom > 0));
    }

    #[test]
    fn arrivals_sorted_by_delay() {
        let mut rng = seeded(4);
        let arr = river_channel(75.0).arrivals(&mut rng);
        for w in arr.windows(2) {
            assert!(w[0].delay_s <= w[1].delay_s);
        }
    }

    #[test]
    fn longer_range_weaker_direct_path() {
        let mut rng = seeded(5);
        let near = river_channel(20.0).arrivals(&mut rng)[0].gain.abs();
        let far = river_channel(200.0).arrivals(&mut rng)[0].gain.abs();
        assert!(far < near / 3.0);
    }

    #[test]
    fn calm_sea_has_zero_doppler() {
        let mut rng = seeded(6);
        let mut env = Environment::ocean(SeaState::Calm);
        env.sea_state = SeaState::Calm;
        let ch =
            ChannelModel::new(env, Position::new(0.0, 0.0, 5.0), Position::new(80.0, 0.0, 5.0), F);
        for a in ch.arrivals(&mut rng) {
            assert!(a.surface_mod.is_static());
        }
    }

    #[test]
    fn rough_sea_surface_paths_carry_doppler() {
        let mut rng = seeded(7);
        let ch = ChannelModel::new(
            Environment::ocean(SeaState::Rippled),
            Position::new(0.0, 0.0, 5.0),
            Position::new(80.0, 0.0, 5.0),
            F,
        );
        let arr = ch.arrivals(&mut rng);
        let surface_paths: Vec<_> = arr.iter().filter(|a| a.n_surface > 0).collect();
        assert!(!surface_paths.is_empty(), "ripples should not kill the coherent surface path");
        assert!(surface_paths.iter().any(|a| !a.surface_mod.is_static()));
        // Static paths stay static.
        for a in arr.iter().filter(|a| a.n_surface == 0) {
            assert!(a.surface_mod.is_static());
        }
    }

    #[test]
    fn moderate_sea_destroys_coherent_surface_paths() {
        // At SS4 the Rayleigh roughness parameter is ≫ 1 at 18.5 kHz, so the
        // *coherent* surface bounce drops below the enumeration floor.
        let mut rng = seeded(17);
        let ch = ChannelModel::new(
            Environment::ocean(SeaState::Moderate),
            Position::new(0.0, 0.0, 5.0),
            Position::new(80.0, 0.0, 5.0),
            F,
        );
        let arr = ch.arrivals(&mut rng);
        assert!(
            arr.iter().all(|a| a.n_surface == 0),
            "coherent surface paths should vanish at SS4"
        );
        // The direct and bottom-bounce structure remains.
        assert!(arr.iter().any(|a| a.is_direct()));
    }

    #[test]
    fn passband_apply_delays_and_scales() {
        // Single artificial arrival: pure delay + scale.
        let arr = vec![Arrival {
            delay_s: 10.0 / 48000.0,
            gain: C64::real(0.5),
            n_surface: 0,
            n_bottom: 0,
            path_m: 1.0,
            surface_mod: SurfaceMod::STATIC,
        }];
        let ir = ImpulseResponse::from_arrivals(arr, 48000.0, F);
        let x = vec![0.0, 0.0, 1.0, 0.0, 0.0];
        let y = ir.apply_passband(&x);
        assert!(
            (y[12] - 0.5).abs() < 1e-9,
            "impulse should land at 12 scaled 0.5, y[12]={}",
            y[12]
        );
    }

    #[test]
    fn baseband_apply_includes_carrier_phase() {
        let tau = 1.0 / (4.0 * F.value()); // quarter carrier cycle
        let arr = vec![Arrival {
            delay_s: tau,
            gain: C64::ONE,
            n_surface: 0,
            n_bottom: 0,
            path_m: 1.0,
            surface_mod: SurfaceMod::STATIC,
        }];
        let fs = 4000.0; // envelope rate; tau ≪ one envelope sample
        let ir = ImpulseResponse::from_arrivals(arr, fs, F);
        let x = vec![C64::ONE; 8];
        let y = ir.apply_baseband(&x);
        // Steady-state gain should be e^{-jπ/2} = −j.
        let g = y[4];
        assert!((g.re).abs() < 1e-6 && (g.im + 1.0).abs() < 1e-6, "got {g}");
    }

    #[test]
    fn narrowband_gain_matches_baseband_steady_state() {
        // Calm water: no Doppler, so steady state must equal H(f₀) exactly.
        let mut rng = seeded(8);
        let mut env = Environment::river();
        env.sea_state = SeaState::Calm;
        let ch =
            ChannelModel::new(env, Position::new(0.0, 0.0, 2.0), Position::new(40.0, 0.0, 2.0), F);
        let ir = ch.impulse_response(4000.0, &mut rng);
        let h = ir.narrowband_gain();
        let x = vec![C64::ONE; 200];
        let y = ir.apply_baseband(&x);
        // Steady state after the delay spread has filled.
        let idx = y.len() - 50;
        assert!((y[idx] - h).abs() < 0.05 * h.abs().max(1e-9), "y={} h={}", y[idx], h);
    }

    #[test]
    fn delay_spread_positive_in_shallow_water() {
        let mut rng = seeded(9);
        let ir = river_channel(60.0).impulse_response(48000.0, &mut rng);
        assert!(ir.delay_spread() > 0.0);
        // Bounce geometry bound: extra path ≤ a few× depth at this range.
        assert!(ir.delay_spread() < 0.05);
    }

    #[test]
    fn frozen_taps_reproduce_static_baseband_application() {
        // Calm water: the TVIR snapshot at any time IS the channel, so
        // convolving with the sampled taps must reproduce apply_baseband.
        let mut rng = seeded(21);
        let mut env = Environment::river();
        env.sea_state = SeaState::Calm;
        let ch =
            ChannelModel::new(env, Position::new(0.0, 0.0, 2.0), Position::new(40.0, 0.0, 2.0), F);
        let ir = ch.impulse_response(4000.0, &mut rng);
        let taps = ir.baseband_taps_at(0.0);
        assert_eq!(taps.len(), ir.tap_count());
        let x: Vec<C64> =
            (0..300).map(|i| C64::new((i as f64 * 0.1).sin(), (i as f64 * 0.07).cos())).collect();
        let direct = ir.apply_baseband(&x);
        let via_taps = vab_util::ola::convolve_fft_c64(&x, &taps);
        let scale = direct.iter().map(|v| v.abs()).fold(1e-12, f64::max);
        let n = direct.len().min(via_taps.len());
        // apply_baseband clips each arrival's fractional-interp share of
        // x[0] (a one-sample onset transient per arrival); the taps keep
        // it. Compare once every onset has filled.
        for i in taps.len()..n {
            assert!(
                (via_taps[i] - direct[i]).abs() < 1e-9 * scale,
                "i={i}: {} vs {}",
                via_taps[i],
                direct[i]
            );
        }
    }

    #[test]
    fn retro_round_trip_doubles_delays_with_real_positive_power_taps() {
        let mut rng = seeded(22);
        let arr = river_channel(60.0).arrivals(&mut rng);
        let rt = retro_round_trip(&arr, F);
        assert_eq!(rt.len(), arr.len());
        for (a, r) in arr.iter().zip(&rt) {
            assert!((r.delay_s - 2.0 * a.delay_s).abs() < 1e-15);
            let eff = if a.is_direct() { 1.0 } else { RETRO_CONJ_EFF };
            // The pre-rotation leaves the magnitude at η·|a|².
            assert!((r.gain.abs() - eff * a.gain.norm_sq()).abs() < 1e-12);
            assert!((r.surface_mod.beta_rad - 2.0 * a.surface_mod.beta_rad).abs() < 1e-15);
        }
    }

    #[test]
    fn try_new_accepts_in_column_geometry() {
        let env = Environment::river(); // 4 m column
        let ch = ChannelModel::try_new(
            env,
            Position::new(0.0, 0.0, 2.0),
            Position::new(50.0, 0.0, 2.0),
            F,
        );
        assert!(ch.is_ok());
    }

    #[test]
    fn try_new_rejects_bad_geometry() {
        let env = Environment::river();
        let inside = Position::new(0.0, 0.0, 2.0);
        // Above the surface.
        let above = Position::new(10.0, 0.0, -1.0);
        assert_eq!(
            ChannelModel::try_new(env.clone(), inside, above, F).err(),
            Some(GeometryError::OutOfColumn { z_m: -1.0, depth_m: 4.0 })
        );
        // Below the bottom.
        let below = Position::new(10.0, 0.0, 9.0);
        assert!(matches!(
            ChannelModel::try_new(env.clone(), below, inside, F),
            Err(GeometryError::OutOfColumn { .. })
        ));
        // NaN coordinate.
        let nan = Position::new(f64::NAN, 0.0, 2.0);
        assert_eq!(
            ChannelModel::try_new(env.clone(), nan, inside, F).err(),
            Some(GeometryError::NonFinite)
        );
        // Silly carrier.
        assert!(matches!(
            ChannelModel::try_new(env, inside, inside, Hertz(0.0)),
            Err(GeometryError::BadCarrier { .. })
        ));
    }
}
