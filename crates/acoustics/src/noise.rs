//! Ambient ocean noise — Wenz curves in Coates' parametric form.
//!
//! Four incoherent contributions: turbulence (very low frequency), distant
//! shipping, wind/surface agitation (dominant in the VAB band), and thermal
//! noise (takes over above ~100 kHz). Each is a power spectral density in
//! dB re 1 µPa²/Hz.

use vab_util::db::power_db_sum;
use vab_util::units::{Db, Hertz};

/// Turbulence noise PSD (significant only below ~10 Hz).
pub fn turbulence_psd(f: Hertz) -> Db {
    Db(17.0 - 30.0 * f.khz().log10())
}

/// Distant-shipping noise PSD. `shipping` is the activity factor in [0, 1].
pub fn shipping_psd(f: Hertz, shipping: f64) -> Db {
    let fk = f.khz();
    Db(40.0 + 20.0 * (shipping.clamp(0.0, 1.0) - 0.5) + 26.0 * fk.log10()
        - 60.0 * (fk + 0.03).log10())
}

/// Wind / sea-surface noise PSD. `wind_mps` is wind speed in m/s.
pub fn wind_psd(f: Hertz, wind_mps: f64) -> Db {
    let fk = f.khz();
    Db(50.0 + 7.5 * wind_mps.max(0.0).sqrt() + 20.0 * fk.log10() - 40.0 * (fk + 0.4).log10())
}

/// Thermal (molecular agitation) noise PSD.
pub fn thermal_psd(f: Hertz) -> Db {
    Db(-15.0 + 20.0 * f.khz().log10())
}

/// Total ambient noise PSD: incoherent sum of all four contributions.
pub fn total_psd(f: Hertz, shipping: f64, wind_mps: f64) -> Db {
    Db(power_db_sum([
        turbulence_psd(f).value(),
        shipping_psd(f, shipping).value(),
        wind_psd(f, wind_mps).value(),
        thermal_psd(f).value(),
    ]))
}

/// Band noise level: PSD integrated over a receiver bandwidth,
/// `NL = PSD + 10·log10(BW)` assuming the PSD is flat over the band — a good
/// approximation for the narrow backscatter bandwidths (≤ a few kHz).
pub fn band_level(psd: Db, bandwidth: Hertz) -> Db {
    psd + Db(10.0 * bandwidth.value().max(1.0).log10())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    #[test]
    fn wind_noise_dominates_in_vab_band() {
        let f = Hertz::from_khz(18.5);
        let wind = wind_psd(f, 5.0).value();
        assert!(wind > turbulence_psd(f).value());
        assert!(wind > thermal_psd(f).value());
        assert!(wind > shipping_psd(f, 0.5).value());
    }

    #[test]
    fn more_wind_more_noise() {
        let f = Hertz::from_khz(18.5);
        assert!(wind_psd(f, 10.0).value() > wind_psd(f, 2.0).value());
    }

    #[test]
    fn psd_magnitude_is_plausible() {
        // Sea-state ~2 (5 m/s wind) at 18.5 kHz: ≈ 40–55 dB re µPa²/Hz.
        let psd = total_psd(Hertz::from_khz(18.5), 0.5, 5.0).value();
        assert!(psd > 35.0 && psd < 60.0, "got {psd}");
    }

    #[test]
    fn total_is_at_least_the_max_component() {
        let f = Hertz::from_khz(18.5);
        let t = total_psd(f, 0.5, 5.0).value();
        let w = wind_psd(f, 5.0).value();
        assert!(t >= w && t < w + 6.0);
    }

    #[test]
    fn thermal_rises_with_frequency_and_wins_high() {
        let f = Hertz::from_khz(300.0);
        assert!(thermal_psd(f).value() > wind_psd(f, 5.0).value());
    }

    #[test]
    fn band_level_integrates_bandwidth() {
        let psd = Db(50.0);
        let nl = band_level(psd, Hertz(1000.0));
        assert!(approx_eq(nl.value(), 80.0, 1e-9));
        // 1 Hz band adds nothing.
        assert!(approx_eq(band_level(psd, Hertz(1.0)).value(), 50.0, 1e-9));
    }

    #[test]
    fn shipping_activity_scales_level() {
        let f = Hertz::from_khz(0.1); // shipping band
        let quiet = shipping_psd(f, 0.0).value();
        let busy = shipping_psd(f, 1.0).value();
        assert!(approx_eq(busy - quiet, 20.0, 1e-9));
    }
}
