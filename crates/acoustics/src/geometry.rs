//! Deployment geometry: 3-D positions with a depth-positive-down convention.

use vab_util::units::{Degrees, Meters};

/// A point in the water column. `x`, `y` are horizontal metres; `z` is depth
/// in metres, positive **downward** (surface at z = 0).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Horizontal coordinate, m.
    pub x: f64,
    /// Horizontal coordinate, m.
    pub y: f64,
    /// Depth below the surface, m (positive down).
    pub z: f64,
}

impl Position {
    /// Creates a position.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// A position at `depth` directly below the origin.
    pub const fn at_depth(depth: f64) -> Self {
        Self { x: 0.0, y: 0.0, z: depth }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(&self, other: &Position) -> Meters {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        Meters((dx * dx + dy * dy + dz * dz).sqrt())
    }

    /// Horizontal (slant-free) range to another position.
    pub fn horizontal_range(&self, other: &Position) -> Meters {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        Meters((dx * dx + dy * dy).sqrt())
    }

    /// Azimuth from this position to `other`, measured in the horizontal
    /// plane from the +x axis.
    pub fn azimuth_to(&self, other: &Position) -> Degrees {
        Degrees::from_radians((other.y - self.y).atan2(other.x - self.x))
    }

    /// Elevation angle to `other` above the horizontal (negative = deeper).
    pub fn elevation_to(&self, other: &Position) -> Degrees {
        let h = self.horizontal_range(other).value();
        // z is positive down, so a deeper target has negative elevation.
        Degrees::from_radians((-(other.z - self.z)).atan2(h))
    }

    /// Mirror image across the surface plane (z → −z); used by the image
    /// method for surface bounces.
    pub fn mirror_surface(&self) -> Position {
        Position::new(self.x, self.y, -self.z)
    }

    /// Mirror image across the bottom plane at `depth` (z → 2·depth − z).
    pub fn mirror_bottom(&self, depth: f64) -> Position {
        Position::new(self.x, self.y, 2.0 * depth - self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    #[test]
    fn distance_pythagoras() {
        let a = Position::new(0.0, 0.0, 0.0);
        let b = Position::new(3.0, 4.0, 0.0);
        assert!(approx_eq(a.distance_to(&b).value(), 5.0, 1e-12));
        let c = Position::new(3.0, 4.0, 12.0);
        assert!(approx_eq(a.distance_to(&c).value(), 13.0, 1e-12));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Position::new(1.0, -2.0, 3.0);
        let b = Position::new(-4.0, 5.0, 0.5);
        assert_eq!(a.distance_to(&b), b.distance_to(&a));
    }

    #[test]
    fn azimuth_cardinal_directions() {
        let o = Position::default();
        assert!(approx_eq(o.azimuth_to(&Position::new(1.0, 0.0, 0.0)).value(), 0.0, 1e-9));
        assert!(approx_eq(o.azimuth_to(&Position::new(0.0, 1.0, 0.0)).value(), 90.0, 1e-9));
        assert!(approx_eq(o.azimuth_to(&Position::new(-1.0, 0.0, 0.0)).value(), 180.0, 1e-9));
    }

    #[test]
    fn elevation_sign_convention() {
        let o = Position::at_depth(5.0);
        // Target at same depth → 0 elevation.
        assert!(approx_eq(o.elevation_to(&Position::new(10.0, 0.0, 5.0)).value(), 0.0, 1e-9));
        // Deeper target → negative elevation.
        assert!(o.elevation_to(&Position::new(10.0, 0.0, 8.0)).value() < 0.0);
        // Shallower target → positive.
        assert!(o.elevation_to(&Position::new(10.0, 0.0, 2.0)).value() > 0.0);
    }

    #[test]
    fn mirrors() {
        let p = Position::new(1.0, 2.0, 3.0);
        assert_eq!(p.mirror_surface(), Position::new(1.0, 2.0, -3.0));
        assert_eq!(p.mirror_bottom(10.0), Position::new(1.0, 2.0, 17.0));
        // Mirroring twice is identity.
        assert_eq!(p.mirror_surface().mirror_surface(), p);
        assert_eq!(p.mirror_bottom(10.0).mirror_bottom(10.0), p);
    }
}
