//! Seawater absorption coefficients.
//!
//! Two models: Thorp's classic fit (salt water, mid frequencies — quick and
//! ubiquitous in link budgets) and the Francois–Garrison model (full
//! temperature / salinity / depth / pH dependence, valid for fresh water too,
//! which the river evaluation needs).

use vab_util::units::Hertz;

/// Thorp (1967) absorption in **dB/km** for frequency `f`.
///
/// Fit is for salt water at ~4 °C near the surface. `f` is converted to kHz
/// internally as the formula expects.
pub fn thorp_db_per_km(f: Hertz) -> f64 {
    let f2 = f.khz() * f.khz();
    0.11 * f2 / (1.0 + f2) + 44.0 * f2 / (4100.0 + f2) + 2.75e-4 * f2 + 0.003
}

/// Francois & Garrison (1982) absorption in **dB/km**.
///
/// Sum of boric-acid, magnesium-sulfate and pure-water contributions, each
/// with its own relaxation frequency. Setting `salinity_ppt` near zero
/// collapses the model to the pure-water term — the correct behaviour for
/// the river environment.
///
/// * `f` — acoustic frequency
/// * `temp_c` — temperature, °C
/// * `salinity_ppt` — salinity, parts per thousand
/// * `depth_m` — depth, metres
/// * `ph` — acidity (nominal sea water: 8.0)
pub fn francois_garrison_db_per_km(
    f: Hertz,
    temp_c: f64,
    salinity_ppt: f64,
    depth_m: f64,
    ph: f64,
) -> f64 {
    let f_khz = f.khz();
    let t = temp_c;
    let s = salinity_ppt.max(0.0);
    let d = depth_m.max(0.0);
    let c = 1412.0 + 3.21 * t + 1.19 * s + 0.0167 * d; // sound speed used by the fit
    let theta = 273.15 + t;

    // --- Boric acid contribution (dominant below ~1 kHz in sea water).
    let a1 = 8.86 / c * 10f64.powf(0.78 * ph - 5.0);
    let p1 = 1.0;
    let f1 = 2.8 * (s / 35.0).sqrt() * 10f64.powf(4.0 - 1245.0 / theta);
    let boric = a1 * p1 * f1 * f_khz * f_khz / (f1 * f1 + f_khz * f_khz);

    // --- Magnesium sulfate contribution (dominant ~10–100 kHz in sea water).
    let a2 = 21.44 * s / c * (1.0 + 0.025 * t);
    let p2 = 1.0 - 1.37e-4 * d + 6.2e-9 * d * d;
    let f2 = 8.17 * 10f64.powf(8.0 - 1990.0 / theta) / (1.0 + 0.0018 * (s - 35.0));
    let mgso4 = a2 * p2 * f2 * f_khz * f_khz / (f2 * f2 + f_khz * f_khz);

    // --- Pure water contribution.
    let a3 = if t <= 20.0 {
        4.937e-4 - 2.59e-5 * t + 9.11e-7 * t * t - 1.50e-8 * t * t * t
    } else {
        3.964e-4 - 1.146e-5 * t + 1.45e-7 * t * t - 6.5e-10 * t * t * t
    };
    let p3 = 1.0 - 3.83e-5 * d + 4.9e-10 * d * d;
    let water = a3 * p3 * f_khz * f_khz;

    boric + mgso4 + water
}

/// Total absorption loss in dB along a path of `distance_m` metres given a
/// coefficient in dB/km.
#[inline]
pub fn path_absorption_db(alpha_db_per_km: f64, distance_m: f64) -> f64 {
    alpha_db_per_km * distance_m / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;
    use vab_util::units::Hertz;

    #[test]
    fn thorp_at_vab_carrier() {
        // 18.5 kHz: boric ≈0.11, MgSO4 ≈3.39, water ≈0.094 → ≈3.6 dB/km.
        let a = thorp_db_per_km(Hertz::from_khz(18.5));
        assert!(approx_eq(a, 3.6, 0.1), "got {a}");
    }

    #[test]
    fn thorp_increases_with_frequency() {
        let a10 = thorp_db_per_km(Hertz::from_khz(10.0));
        let a20 = thorp_db_per_km(Hertz::from_khz(20.0));
        let a50 = thorp_db_per_km(Hertz::from_khz(50.0));
        assert!(a10 < a20 && a20 < a50);
    }

    #[test]
    fn fg_seawater_matches_thorp_order_of_magnitude() {
        let f = Hertz::from_khz(18.5);
        let fg = francois_garrison_db_per_km(f, 10.0, 35.0, 5.0, 8.0);
        let th = thorp_db_per_km(f);
        assert!(fg > 0.3 * th && fg < 3.0 * th, "FG {fg} vs Thorp {th}");
    }

    #[test]
    fn fresh_water_absorbs_far_less_than_sea_water() {
        let f = Hertz::from_khz(18.5);
        let fresh = francois_garrison_db_per_km(f, 15.0, 0.5, 2.0, 7.0);
        let sea = francois_garrison_db_per_km(f, 15.0, 35.0, 2.0, 8.0);
        assert!(
            fresh < sea / 5.0,
            "fresh {fresh} dB/km should be ≪ sea {sea} dB/km at mid frequencies"
        );
    }

    #[test]
    fn fresh_water_is_dominated_by_pure_water_term() {
        // With S→0 the relaxation terms vanish; α ≈ a3·f².
        let f = Hertz::from_khz(18.5);
        let a = francois_garrison_db_per_km(f, 15.0, 0.0, 2.0, 7.0);
        assert!(a > 0.01 && a < 0.5, "got {a} dB/km");
    }

    #[test]
    fn path_absorption_scales_linearly() {
        assert!(approx_eq(path_absorption_db(3.6, 1000.0), 3.6, 1e-12));
        assert!(approx_eq(path_absorption_db(3.6, 300.0), 1.08, 1e-12));
    }
}
