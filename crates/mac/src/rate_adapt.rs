//! Uplink rate adaptation.
//!
//! The reader measures per-frame outcomes and walks each node up and down
//! the rate table (100/250/500/1000 bps) — conservative up, fast down,
//! like wireless rate control everywhere: a drifting boat changes the
//! link budget by tens of dB over minutes and a fixed rate wastes either
//! airtime (too slow) or frames (too fast).
//!
//! The controller is deliberately simple enough to audit: consecutive
//! successes above a threshold promote one step; any `fail_down` failures
//! within a window demote one step and reset.

use crate::poll::NodeStats;
use crate::Addr;
use std::collections::HashMap;
use vab_core::commands::RATE_TABLE_BPS;

/// BER above which a measurement counts as a spike (immediate fallback).
pub const BER_SPIKE: f64 = 1e-2;

/// BER below which a window counts as clean (eligible to probe back up).
pub const BER_CLEAN: f64 = 1e-4;

/// Clean windows required before probing one rate up.
pub const CLEAN_WINDOWS_TO_PROBE: u32 = 4;

/// Per-node rate-control state.
#[derive(Debug, Clone, Copy)]
struct NodeRate {
    /// Index into [`RATE_TABLE_BPS`].
    code: u8,
    /// Consecutive successes at the current rate.
    streak: u32,
    /// Consecutive failures at the current rate.
    fails: u32,
    /// Consecutive clean BER windows at the current rate.
    clean: u32,
}

/// Reader-side adaptive rate controller.
#[derive(Debug, Clone)]
pub struct RateController {
    nodes: HashMap<Addr, NodeRate>,
    /// Successes needed before promoting.
    up_after: u32,
    /// Consecutive failures that force a demotion.
    down_after: u32,
    /// BER spike threshold (≥ → immediate one-step fallback).
    ber_spike: f64,
    /// Clean-window BER threshold (≤ → counts toward a probe).
    ber_clean: f64,
    /// Clean windows needed before probing up.
    clean_to_probe: u32,
    /// Rate changes issued (statistics).
    pub changes: u64,
    /// BER-spike fallbacks issued (statistics).
    pub spike_fallbacks: u64,
}

/// What the controller wants done after an outcome report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDecision {
    /// Keep the current rate.
    Hold,
    /// Send a `SetRate` command with this rate code.
    Change {
        /// New index into [`RATE_TABLE_BPS`].
        rate_code: u8,
    },
}

impl RateController {
    /// Default policy: promote after 8 clean frames, demote after 2
    /// consecutive losses. Starts everyone at the most robust rate.
    pub fn new() -> Self {
        Self::with_policy(8, 2)
    }

    /// Custom thresholds.
    pub fn with_policy(up_after: u32, down_after: u32) -> Self {
        assert!(up_after >= 1 && down_after >= 1);
        Self {
            nodes: HashMap::new(),
            up_after,
            down_after,
            ber_spike: BER_SPIKE,
            ber_clean: BER_CLEAN,
            clean_to_probe: CLEAN_WINDOWS_TO_PROBE,
            changes: 0,
            spike_fallbacks: 0,
        }
    }

    /// Custom BER thresholds for the spike-fallback / clean-probe path.
    pub fn with_ber_policy(mut self, ber_spike: f64, ber_clean: f64, clean_to_probe: u32) -> Self {
        assert!(ber_spike > ber_clean && clean_to_probe >= 1);
        self.ber_spike = ber_spike;
        self.ber_clean = ber_clean;
        self.clean_to_probe = clean_to_probe;
        self
    }

    /// Emits the rate-change event/metric for one decision.
    fn trace_change(addr: Addr, rate_code: u8, reason: &'static str) {
        vab_obs::event!(
            "mac.rate_adapt",
            "rate_change",
            addr = addr,
            rate_code = rate_code,
            rate_bps = RATE_TABLE_BPS[rate_code as usize],
            reason = reason,
        );
        vab_obs::metrics::inc("rate_adapt.changes", 1);
    }

    fn entry(&mut self, addr: Addr) -> &mut NodeRate {
        self.nodes.entry(addr).or_insert(NodeRate { code: 0, streak: 0, fails: 0, clean: 0 })
    }

    /// Current rate code for a node.
    pub fn rate_code(&self, addr: Addr) -> u8 {
        self.nodes.get(&addr).map(|n| n.code).unwrap_or(0)
    }

    /// Current rate in bps.
    pub fn rate_bps(&self, addr: Addr) -> f64 {
        RATE_TABLE_BPS[self.rate_code(addr) as usize]
    }

    /// Reports a frame outcome for `addr`; returns the control decision.
    pub fn on_outcome(&mut self, addr: Addr, success: bool) -> RateDecision {
        let (up_after, down_after) = (self.up_after, self.down_after);
        let max_code = (RATE_TABLE_BPS.len() - 1) as u8;
        let n = self.entry(addr);
        if success {
            n.fails = 0;
            n.streak += 1;
            if n.streak >= up_after && n.code < max_code {
                n.code += 1;
                n.streak = 0;
                self.changes += 1;
                Self::trace_change(addr, self.rate_code(addr), "outcome_up");
                return RateDecision::Change { rate_code: self.rate_code(addr) };
            }
        } else {
            n.streak = 0;
            n.fails += 1;
            if n.fails >= down_after && n.code > 0 {
                n.code -= 1;
                n.fails = 0;
                self.changes += 1;
                Self::trace_change(addr, self.rate_code(addr), "outcome_down");
                return RateDecision::Change { rate_code: self.rate_code(addr) };
            }
            n.fails = n.fails.min(down_after); // saturate at the floor rate
        }
        RateDecision::Hold
    }

    /// Reports a measured BER for a decoding window of `addr` — the
    /// spike/clean degradation path that complements the frame-outcome
    /// walk:
    ///
    /// * BER ≥ spike threshold → fall back one rate *immediately* (no
    ///   waiting for `down_after` consecutive frame losses — a noise storm
    ///   at 1000 bps costs whole frames while the outcome counter winds
    ///   up);
    /// * BER ≤ clean threshold for `clean_to_probe` consecutive windows →
    ///   probe one rate up (the impairment has passed);
    /// * anything between → hold and reset the clean streak.
    pub fn on_ber_sample(&mut self, addr: Addr, ber: f64) -> RateDecision {
        let (spike, clean, to_probe) = (self.ber_spike, self.ber_clean, self.clean_to_probe);
        let max_code = (RATE_TABLE_BPS.len() - 1) as u8;
        let n = self.entry(addr);
        if ber >= spike {
            n.clean = 0;
            n.streak = 0;
            n.fails = 0;
            if n.code > 0 {
                n.code -= 1;
                self.changes += 1;
                self.spike_fallbacks += 1;
                Self::trace_change(addr, self.rate_code(addr), "ber_spike");
                return RateDecision::Change { rate_code: self.rate_code(addr) };
            }
        } else if ber <= clean {
            n.clean += 1;
            if n.clean >= to_probe && n.code < max_code {
                n.code += 1;
                n.clean = 0;
                self.changes += 1;
                Self::trace_change(addr, self.rate_code(addr), "clean_probe");
                return RateDecision::Change { rate_code: self.rate_code(addr) };
            }
        } else {
            n.clean = 0;
        }
        RateDecision::Hold
    }

    /// Long-run goodput estimate for a node given its delivery statistics
    /// at the current rate (bits/s of useful payload for `payload_bits`
    /// per frame… per query).
    pub fn goodput_estimate(
        &self,
        addr: Addr,
        stats: &NodeStats,
        payload_bits: usize,
        query_period_s: f64,
    ) -> f64 {
        let _ = self.rate_bps(addr); // rate affects query period upstream
        stats.delivery_ratio() * payload_bits as f64 / query_period_s.max(1e-9)
    }
}

impl Default for RateController {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_the_floor() {
        let rc = RateController::new();
        assert_eq!(rc.rate_code(7), 0);
        assert_eq!(rc.rate_bps(7), 100.0);
    }

    #[test]
    fn promotes_after_streak() {
        let mut rc = RateController::with_policy(3, 2);
        assert_eq!(rc.on_outcome(1, true), RateDecision::Hold);
        assert_eq!(rc.on_outcome(1, true), RateDecision::Hold);
        assert_eq!(rc.on_outcome(1, true), RateDecision::Change { rate_code: 1 });
        assert_eq!(rc.rate_bps(1), 250.0);
    }

    #[test]
    fn demotes_after_consecutive_failures() {
        let mut rc = RateController::with_policy(2, 2);
        // Climb to 500 bps.
        for _ in 0..4 {
            rc.on_outcome(1, true);
        }
        assert_eq!(rc.rate_code(1), 2);
        assert_eq!(rc.on_outcome(1, false), RateDecision::Hold);
        assert_eq!(rc.on_outcome(1, false), RateDecision::Change { rate_code: 1 });
        assert_eq!(rc.rate_code(1), 1);
    }

    #[test]
    fn single_failure_does_not_demote() {
        let mut rc = RateController::with_policy(2, 2);
        rc.on_outcome(1, true);
        rc.on_outcome(1, true); // now at code 1
        rc.on_outcome(1, false);
        assert_eq!(rc.rate_code(1), 1, "one loss must not demote");
        rc.on_outcome(1, true); // success resets the fail counter
        rc.on_outcome(1, false);
        assert_eq!(rc.rate_code(1), 1);
    }

    #[test]
    fn saturates_at_table_edges() {
        let mut rc = RateController::with_policy(1, 1);
        for _ in 0..10 {
            rc.on_outcome(1, true);
        }
        assert_eq!(rc.rate_code(1), 3, "caps at the top rate");
        for _ in 0..10 {
            rc.on_outcome(1, false);
        }
        assert_eq!(rc.rate_code(1), 0, "floors at the bottom rate");
    }

    #[test]
    fn nodes_are_independent() {
        let mut rc = RateController::with_policy(1, 1);
        rc.on_outcome(1, true);
        assert_eq!(rc.rate_code(1), 1);
        assert_eq!(rc.rate_code(2), 0);
    }

    #[test]
    fn ber_spike_falls_back_immediately() {
        let mut rc = RateController::with_policy(1, 4);
        for _ in 0..3 {
            rc.on_outcome(1, true);
        }
        assert_eq!(rc.rate_code(1), 3);
        // One spiked window demotes without waiting for 4 frame losses.
        assert_eq!(rc.on_ber_sample(1, 5e-2), RateDecision::Change { rate_code: 2 });
        assert_eq!(rc.spike_fallbacks, 1);
        // At the floor a spike holds (nowhere left to fall).
        let mut floor = RateController::new();
        assert_eq!(floor.on_ber_sample(2, 1.0), RateDecision::Hold);
        assert_eq!(floor.rate_code(2), 0);
    }

    #[test]
    fn clean_windows_probe_back_up() {
        let mut rc = RateController::new().with_ber_policy(1e-2, 1e-4, 3);
        rc.on_ber_sample(1, 0.0);
        rc.on_ber_sample(1, 0.0);
        assert_eq!(rc.on_ber_sample(1, 0.0), RateDecision::Change { rate_code: 1 });
        // A mid-band window resets the clean streak.
        rc.on_ber_sample(1, 0.0);
        rc.on_ber_sample(1, 1e-3);
        rc.on_ber_sample(1, 0.0);
        rc.on_ber_sample(1, 0.0);
        assert_eq!(rc.rate_code(1), 1, "streak must restart after a dirty window");
        assert_eq!(rc.on_ber_sample(1, 0.0), RateDecision::Change { rate_code: 2 });
    }

    #[test]
    fn spike_then_clean_recovers_the_rate() {
        let mut rc = RateController::new().with_ber_policy(1e-2, 1e-4, 2);
        rc.on_ber_sample(3, 0.0);
        rc.on_ber_sample(3, 0.0); // → code 1
        rc.on_ber_sample(3, 0.5); // spike → back to 0
        assert_eq!(rc.rate_code(3), 0);
        rc.on_ber_sample(3, 0.0);
        rc.on_ber_sample(3, 0.0);
        assert_eq!(rc.rate_code(3), 1, "clean windows win the rate back");
    }

    #[test]
    fn converges_to_channel_capacity() {
        // A channel that supports ≤ 500 bps: frames at 1000 bps always
        // fail, everything else succeeds. The controller must settle at
        // code 2 and oscillate gently around it.
        let mut rc = RateController::new();
        let mut at_rate = [0u32; 4];
        for _ in 0..400 {
            let code = rc.rate_code(9);
            let success = code < 3;
            rc.on_outcome(9, success);
            at_rate[code as usize] += 1;
        }
        assert!(at_rate[2] > 200, "should dwell at 500 bps, distribution {at_rate:?}");
        assert!(at_rate[0] < 40, "should not hide at the floor");
    }
}
