//! Round-robin polling MAC.
//!
//! The reader cycles through its node list, sending a `Query` to each and
//! waiting one round-trip-plus-reply window for the backscattered answer.
//! Missing answers are retried up to a limit before moving on; per-node
//! delivery statistics accumulate for the operator.

use std::collections::HashMap;
use vab_link::frame::Frame;

/// Per-node delivery statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Queries sent.
    pub queries: u64,
    /// Replies received.
    pub replies: u64,
    /// Consecutive misses right now.
    pub consecutive_misses: u32,
}

impl NodeStats {
    /// Delivery ratio (1.0 when never queried).
    pub fn delivery_ratio(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.replies as f64 / self.queries as f64
        }
    }
}

/// Reader-side polling state machine.
#[derive(Debug, Clone)]
pub struct PollingMac {
    reader_addr: u8,
    nodes: Vec<u8>,
    next_idx: usize,
    outstanding: Option<u8>,
    retries_left: u32,
    max_retries: u32,
    stats: HashMap<u8, NodeStats>,
}

impl PollingMac {
    /// Creates a polling MAC over a known node list.
    pub fn new(reader_addr: u8, nodes: Vec<u8>, max_retries: u32) -> Self {
        assert!(!nodes.is_empty(), "need at least one node to poll");
        let stats = nodes.iter().map(|&a| (a, NodeStats::default())).collect();
        Self {
            reader_addr,
            nodes,
            next_idx: 0,
            outstanding: None,
            retries_left: max_retries,
            max_retries,
            stats,
        }
    }

    /// The node currently being queried, if any.
    pub fn outstanding(&self) -> Option<u8> {
        self.outstanding
    }

    /// Produces the next downlink query frame. Call when idle or after a
    /// reply/timeout resolved the previous query.
    pub fn next_query(&mut self) -> Frame {
        let target = match self.outstanding {
            Some(addr) => addr, // retry
            None => {
                let addr = self.nodes[self.next_idx];
                self.next_idx = (self.next_idx + 1) % self.nodes.len();
                self.outstanding = Some(addr);
                self.retries_left = self.max_retries;
                addr
            }
        };
        let entry = self.stats.entry(target).or_default();
        entry.queries += 1;
        Frame::new(target, self.reader_addr, 0, vec![0x01]) // Command::Query
    }

    /// Reports a successful uplink reception from `src`.
    pub fn on_reply(&mut self, src: u8) {
        if self.outstanding == Some(src) {
            self.outstanding = None;
        }
        let entry = self.stats.entry(src).or_default();
        entry.replies += 1;
        entry.consecutive_misses = 0;
    }

    /// Reports a reply-window timeout. Returns `true` when the query will
    /// be retried, `false` when the MAC gives up and moves on.
    pub fn on_timeout(&mut self) -> bool {
        let Some(addr) = self.outstanding else {
            return false;
        };
        let entry = self.stats.entry(addr).or_default();
        entry.consecutive_misses += 1;
        if self.retries_left > 0 {
            self.retries_left -= 1;
            true
        } else {
            self.outstanding = None;
            false
        }
    }

    /// Statistics for one node.
    pub fn stats(&self, addr: u8) -> NodeStats {
        self.stats.get(&addr).copied().unwrap_or_default()
    }

    /// Aggregate delivery ratio across all nodes.
    pub fn total_delivery_ratio(&self) -> f64 {
        let (q, r) =
            self.stats.values().fold((0u64, 0u64), |(q, r), s| (q + s.queries, r + s.replies));
        if q == 0 {
            1.0
        } else {
            r as f64 / q as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_order() {
        let mut mac = PollingMac::new(0, vec![1, 2, 3], 0);
        let a = mac.next_query();
        assert_eq!(a.dest, 1);
        mac.on_reply(1);
        let b = mac.next_query();
        assert_eq!(b.dest, 2);
        mac.on_reply(2);
        let c = mac.next_query();
        assert_eq!(c.dest, 3);
        mac.on_reply(3);
        assert_eq!(mac.next_query().dest, 1, "wraps around");
    }

    #[test]
    fn retries_then_gives_up() {
        let mut mac = PollingMac::new(0, vec![9], 2);
        assert_eq!(mac.next_query().dest, 9);
        assert!(mac.on_timeout()); // retry 1
        mac.next_query();
        assert!(mac.on_timeout()); // retry 2
        mac.next_query();
        assert!(!mac.on_timeout()); // give up
        assert_eq!(mac.outstanding(), None);
        assert_eq!(mac.stats(9).queries, 3);
        assert_eq!(mac.stats(9).consecutive_misses, 3);
    }

    #[test]
    fn reply_resets_miss_counter() {
        let mut mac = PollingMac::new(0, vec![5], 3);
        mac.next_query();
        mac.on_timeout();
        mac.next_query();
        mac.on_reply(5);
        assert_eq!(mac.stats(5).consecutive_misses, 0);
        assert_eq!(mac.stats(5).replies, 1);
    }

    #[test]
    fn delivery_ratios() {
        let mut mac = PollingMac::new(0, vec![1, 2], 0);
        mac.next_query();
        mac.on_reply(1);
        mac.next_query();
        mac.on_timeout();
        assert!((mac.stats(1).delivery_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(mac.stats(2).replies, 0);
        assert!((mac.total_delivery_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn query_frame_is_a_query_command() {
        let mut mac = PollingMac::new(0x10, vec![1], 0);
        let f = mac.next_query();
        assert_eq!(f.src, 0x10);
        assert_eq!(f.payload, vec![0x01]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_node_list_rejected() {
        let _ = PollingMac::new(0, vec![], 1);
    }
}
