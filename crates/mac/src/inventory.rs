//! Network inventory: discover an unknown population, then hand out TDMA
//! slots — the bootstrap sequence of a VAB deployment.

use crate::aloha::AlohaReader;
use crate::tdma::TdmaSchedule;
use rand::Rng;
use vab_util::units::Seconds;

/// Result of an inventory run.
#[derive(Debug, Clone)]
pub struct InventoryReport {
    /// Addresses discovered, in discovery order.
    pub discovered: Vec<u8>,
    /// Contention rounds used.
    pub rounds: u32,
    /// Total contention slots spent.
    pub slots_used: u64,
    /// Collisions along the way.
    pub collisions: u64,
    /// The TDMA schedule assigned afterwards.
    pub schedule: TdmaSchedule,
}

/// Discovers `population` (hidden from the reader) with framed ALOHA and
/// assigns every discovered node a TDMA slot.
///
/// `slot_duration`/`guard` configure the resulting schedule. Gives up after
/// `max_rounds` (partial schedules are still returned).
pub fn run_inventory<R: Rng + ?Sized>(
    population: &[u8],
    initial_window: usize,
    max_rounds: u32,
    slot_duration: Seconds,
    guard: Seconds,
    rng: &mut R,
) -> InventoryReport {
    let mut reader = AlohaReader::new(initial_window);
    let mut pending = population.to_vec();
    let mut rounds = 0;
    while !pending.is_empty() && rounds < max_rounds {
        reader.run_round(&mut pending, rng);
        rounds += 1;
    }
    let n = reader.identified.len().clamp(1, 255) as u8;
    let mut schedule = TdmaSchedule::new(n, slot_duration, guard);
    schedule.assign_all(&reader.identified);
    InventoryReport {
        discovered: reader.identified.clone(),
        rounds,
        slots_used: reader.slots_used,
        collisions: reader.collisions,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::rng::seeded;

    #[test]
    fn full_population_discovered_and_scheduled() {
        let mut rng = seeded(81);
        let population: Vec<u8> = (10..20).collect();
        let report = run_inventory(&population, 8, 100, Seconds(1.0), Seconds(0.2), &mut rng);
        assert_eq!(report.discovered.len(), 10);
        for &a in &population {
            assert!(report.schedule.slot_of(a).is_some(), "node {a} unscheduled");
        }
        // Slots are unique.
        let mut slots: Vec<u8> = population.iter().map(|&a| report.schedule.slot_of(a).expect("assigned")).collect();
        slots.sort();
        slots.dedup();
        assert_eq!(slots.len(), 10);
    }

    #[test]
    fn empty_population_is_fine() {
        let mut rng = seeded(82);
        let report = run_inventory(&[], 8, 10, Seconds(1.0), Seconds(0.1), &mut rng);
        assert!(report.discovered.is_empty());
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn round_limit_respected() {
        let mut rng = seeded(83);
        let population: Vec<u8> = (1..=100).collect();
        let report = run_inventory(&population, 1, 2, Seconds(1.0), Seconds(0.1), &mut rng);
        assert!(report.rounds <= 2);
        assert!(report.discovered.len() < 100, "cannot finish in 2 tiny rounds");
    }

    #[test]
    fn deterministic_under_seed() {
        let population: Vec<u8> = (1..=15).collect();
        let a = run_inventory(&population, 8, 100, Seconds(1.0), Seconds(0.1), &mut seeded(84));
        let b = run_inventory(&population, 8, 100, Seconds(1.0), Seconds(0.1), &mut seeded(84));
        assert_eq!(a.discovered, b.discovered);
        assert_eq!(a.slots_used, b.slots_used);
    }
}
