//! Network inventory: discover an unknown population, then hand out TDMA
//! slots — the bootstrap sequence of a VAB deployment.
//!
//! Deployments also need the reverse operation: nodes that *were*
//! inventoried can fall silent (harvest blackout, reader restart losing
//! its schedule, a boat parked over the array). [`SilenceMonitor`] tracks
//! consecutive missed polls per node, and [`reinventory`] re-runs
//! contention over the silent set and merges the survivors back into a
//! rebuilt schedule instead of forgetting them forever.

use crate::aloha::AlohaReader;
use crate::tdma::TdmaSchedule;
use crate::Addr;
use rand::Rng;
use std::collections::HashMap;
use vab_util::units::Seconds;

/// Consecutive missed polls after which a node counts as silent.
pub const SILENCE_THRESHOLD: u32 = 3;

/// Tracks per-node consecutive missed polls so the reader can notice
/// nodes that dropped off the schedule.
#[derive(Debug, Clone, Default)]
pub struct SilenceMonitor {
    misses: HashMap<Addr, u32>,
    threshold: u32,
}

impl SilenceMonitor {
    /// Monitor flagging nodes after `threshold` consecutive missed polls.
    pub fn new(threshold: u32) -> Self {
        assert!(threshold >= 1);
        Self { misses: HashMap::new(), threshold }
    }

    /// Records a poll outcome; returns `true` if this miss crossed the
    /// silence threshold (edge-triggered: fires once per silence spell).
    pub fn on_poll(&mut self, addr: Addr, replied: bool) -> bool {
        let m = self.misses.entry(addr).or_insert(0);
        if replied {
            *m = 0;
            return false;
        }
        *m += 1;
        let crossed = *m == self.threshold;
        if crossed {
            vab_obs::event!("mac.inventory", "node_silent", addr = addr, misses = *m);
            vab_obs::metrics::inc("inventory.silences", 1);
        }
        crossed
    }

    /// Nodes currently at or past the silence threshold.
    pub fn silent_nodes(&self) -> Vec<Addr> {
        let mut v: Vec<Addr> =
            self.misses.iter().filter(|(_, &m)| m >= self.threshold).map(|(&a, _)| a).collect();
        v.sort_unstable();
        v
    }

    /// Clears the miss counter for `addr` (e.g. after re-inventory).
    pub fn reset(&mut self, addr: Addr) {
        self.misses.remove(&addr);
    }
}

/// Re-inventories `silent` nodes of which `responsive` subset is actually
/// reachable again, and rebuilds the TDMA schedule over the still-alive
/// population (`alive` = nodes answering polls + rediscovered ones).
///
/// Returns the merged report; nodes in `silent` that stayed unreachable
/// are simply absent from the new schedule.
pub fn reinventory<R: Rng + ?Sized>(
    alive: &[Addr],
    silent_but_reachable: &[Addr],
    initial_window: usize,
    max_rounds: u32,
    slot_duration: Seconds,
    guard: Seconds,
    rng: &mut R,
) -> InventoryReport {
    let rediscovered =
        run_inventory(silent_but_reachable, initial_window, max_rounds, slot_duration, guard, rng);
    let mut merged: Vec<Addr> = alive.to_vec();
    for &a in &rediscovered.discovered {
        if !merged.contains(&a) {
            merged.push(a);
        }
    }
    let n = merged.len().max(1) as u32;
    let mut schedule = TdmaSchedule::new(n, slot_duration, guard);
    schedule.assign_all(&merged);
    vab_obs::event!(
        "mac.inventory",
        "reinventory",
        offered = silent_but_reachable.len(),
        rediscovered = rediscovered.discovered.len(),
        scheduled = merged.len(),
        rounds = rediscovered.rounds,
    );
    vab_obs::metrics::inc("inventory.reinventories", 1);
    InventoryReport {
        discovered: merged,
        rounds: rediscovered.rounds,
        slots_used: rediscovered.slots_used,
        collisions: rediscovered.collisions,
        schedule,
    }
}

/// Result of an inventory run.
#[derive(Debug, Clone)]
pub struct InventoryReport {
    /// Addresses discovered, in discovery order.
    pub discovered: Vec<Addr>,
    /// Contention rounds used.
    pub rounds: u32,
    /// Total contention slots spent.
    pub slots_used: u64,
    /// Collisions along the way.
    pub collisions: u64,
    /// The TDMA schedule assigned afterwards.
    pub schedule: TdmaSchedule,
}

/// Discovers `population` (hidden from the reader) with framed ALOHA and
/// assigns every discovered node a TDMA slot.
///
/// `slot_duration`/`guard` configure the resulting schedule. Gives up after
/// `max_rounds` (partial schedules are still returned).
pub fn run_inventory<R: Rng + ?Sized>(
    population: &[Addr],
    initial_window: usize,
    max_rounds: u32,
    slot_duration: Seconds,
    guard: Seconds,
    rng: &mut R,
) -> InventoryReport {
    let mut reader = AlohaReader::new(initial_window);
    let mut pending = population.to_vec();
    let mut rounds = 0;
    while !pending.is_empty() && rounds < max_rounds {
        reader.run_round(&mut pending, rng);
        rounds += 1;
    }
    let n = reader.identified.len().max(1) as u32;
    let mut schedule = TdmaSchedule::new(n, slot_duration, guard);
    schedule.assign_all(&reader.identified);
    InventoryReport {
        discovered: reader.identified.clone(),
        rounds,
        slots_used: reader.slots_used,
        collisions: reader.collisions,
        schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::rng::seeded;

    #[test]
    fn full_population_discovered_and_scheduled() {
        let mut rng = seeded(81);
        let population: Vec<Addr> = (10..20).collect();
        let report = run_inventory(&population, 8, 100, Seconds(1.0), Seconds(0.2), &mut rng);
        assert_eq!(report.discovered.len(), 10);
        for &a in &population {
            assert!(report.schedule.slot_of(a).is_some(), "node {a} unscheduled");
        }
        // Slots are unique.
        let mut slots: Vec<u32> =
            population.iter().map(|&a| report.schedule.slot_of(a).expect("assigned")).collect();
        slots.sort();
        slots.dedup();
        assert_eq!(slots.len(), 10);
    }

    #[test]
    fn empty_population_is_fine() {
        let mut rng = seeded(82);
        let report = run_inventory(&[], 8, 10, Seconds(1.0), Seconds(0.1), &mut rng);
        assert!(report.discovered.is_empty());
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn round_limit_respected() {
        let mut rng = seeded(83);
        let population: Vec<Addr> = (1..=100).collect();
        let report = run_inventory(&population, 1, 2, Seconds(1.0), Seconds(0.1), &mut rng);
        assert!(report.rounds <= 2);
        assert!(report.discovered.len() < 100, "cannot finish in 2 tiny rounds");
    }

    #[test]
    fn deterministic_under_seed() {
        let population: Vec<Addr> = (1..=15).collect();
        let a = run_inventory(&population, 8, 100, Seconds(1.0), Seconds(0.1), &mut seeded(84));
        let b = run_inventory(&population, 8, 100, Seconds(1.0), Seconds(0.1), &mut seeded(84));
        assert_eq!(a.discovered, b.discovered);
        assert_eq!(a.slots_used, b.slots_used);
    }

    #[test]
    fn silence_monitor_is_edge_triggered() {
        let mut mon = SilenceMonitor::new(3);
        assert!(!mon.on_poll(5, false));
        assert!(!mon.on_poll(5, false));
        assert!(mon.on_poll(5, false), "third miss crosses the threshold");
        assert!(!mon.on_poll(5, false), "fires only once per spell");
        assert_eq!(mon.silent_nodes(), vec![5]);
        assert!(!mon.on_poll(5, true), "a reply clears the counter");
        assert!(mon.silent_nodes().is_empty());
    }

    #[test]
    fn reinventory_merges_rediscovered_nodes() {
        let mut rng = seeded(85);
        let alive = [1u32, 2, 3];
        let silent_reachable = [7u32, 9]; // node 8 stayed dark: not offered
        let report =
            reinventory(&alive, &silent_reachable, 8, 100, Seconds(1.0), Seconds(0.1), &mut rng);
        for a in [1u32, 2, 3, 7, 9] {
            assert!(report.discovered.contains(&a), "node {a} missing after re-inventory");
            assert!(report.schedule.slot_of(a).is_some(), "node {a} unscheduled");
        }
        assert!(!report.discovered.contains(&8));
        // Slots unique over the merged set.
        let mut slots: Vec<u32> = report
            .discovered
            .iter()
            .map(|&a| report.schedule.slot_of(a).expect("assigned"))
            .collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 5);
    }

    #[test]
    fn reinventory_with_nothing_reachable_keeps_alive_set() {
        let mut rng = seeded(86);
        let report = reinventory(&[4u32, 6], &[], 8, 10, Seconds(1.0), Seconds(0.1), &mut rng);
        assert_eq!(report.discovered, vec![4, 6]);
        assert!(report.schedule.slot_of(4).is_some());
    }
}
