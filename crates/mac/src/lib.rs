//! # vab-mac — medium access for backscatter networks
//!
//! Backscatter MAC is reader-driven: nodes cannot hear each other and only
//! speak when illuminated, so the reader owns the schedule. The layers:
//!
//! * [`poll`] — round-robin polling of a known node population;
//! * [`tdma`] — slotted schedules for periodic monitoring (collision-free);
//! * [`aloha`] — framed slotted ALOHA with Q-style window adaptation for
//!   discovering an unknown population ([`inventory`]);
//! * [`rate_adapt`] — per-node uplink rate control over the rate table.
//!
//! Collisions are abstract here (any two respondents in a slot collide);
//! `vab-net` swaps in physical-layer capture through
//! [`AlohaReader::run_round_with`] without changing any of the policy code.
//!
//! Addresses are [`Addr`] (`u32`): inventory, TDMA and rate control all
//! operate on the full ocean-scale address space `vab-net` deploys
//! (10k–100k nodes). Only the wire format (`vab_link::frame::Frame`) keeps
//! the paper's one-byte address field — at scale each multi-reader cell
//! maps its members onto cell-local `u8` addresses (see `SCALING.md`).
//!
//! ## Example: inventory an unknown population, then schedule it
//!
//! ```
//! use vab_mac::{run_inventory, Addr, TdmaSchedule};
//! use vab_util::rng::seeded;
//! use vab_util::units::Seconds;
//!
//! // Ten hidden nodes, discovered by framed ALOHA from a window of 8 slots.
//! let population: Vec<Addr> = (1..=10).collect();
//! let report = run_inventory(
//!     &population,
//!     8,            // initial contention window
//!     100,          // round cap
//!     Seconds(1.0), // TDMA slot duration
//!     Seconds(0.2), // guard interval
//!     &mut seeded(7),
//! );
//! assert_eq!(report.discovered.len(), 10);
//! // Every discovered node holds a unique TDMA slot afterwards.
//! assert!(population.iter().all(|&a| report.schedule.slot_of(a).is_some()));
//! ```

#![warn(missing_docs)]

/// A node address as the MAC layer sees it.
///
/// Wide enough for ocean-scale deployments (10k–100k nodes); the physical
/// `Frame` address field stays `u8` per the paper's link format, with
/// cell-local mapping applied by the deployment layer.
pub type Addr = u32;

pub mod aloha;
pub mod inventory;
pub mod poll;
pub mod rate_adapt;
pub mod tdma;

pub use aloha::{AlohaReader, SlotOutcome};
pub use inventory::run_inventory;
pub use poll::PollingMac;
pub use rate_adapt::{RateController, RateDecision};
pub use tdma::TdmaSchedule;
