//! # vab-mac — medium access for backscatter networks
//!
//! Backscatter MAC is reader-driven: nodes cannot hear each other and only
//! speak when illuminated, so the reader owns the schedule. Three layers:
//!
//! * [`poll`] — round-robin polling of a known node population;
//! * [`tdma`] — slotted schedules for periodic monitoring (collision-free);
//! * [`aloha`] — framed slotted ALOHA with Q-style window adaptation for
//!   discovering an unknown population ([`inventory`]);
//! * [`rate_adapt`] — per-node uplink rate control over the rate table.

pub mod aloha;
pub mod inventory;
pub mod poll;
pub mod rate_adapt;
pub mod tdma;

pub use aloha::{AlohaReader, SlotOutcome};
pub use inventory::run_inventory;
pub use poll::PollingMac;
pub use rate_adapt::{RateController, RateDecision};
pub use tdma::TdmaSchedule;
