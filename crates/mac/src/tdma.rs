//! TDMA scheduling for periodic monitoring.
//!
//! Once the population is known (via [`crate::inventory`]), the reader
//! assigns each node a slot; a round is `n_slots × slot duration`, preceded
//! by a broadcast beacon that nodes use as the time reference — backscatter
//! nodes have no clocks worth trusting, so every round is re-synchronized.

use crate::Addr;
use std::collections::HashMap;
use vab_util::units::Seconds;

/// A TDMA round schedule.
///
/// Slot indices are `u32` so an ocean-scale cell can hold one slot per
/// member without a round-size cap — the historical `u16` slot index
/// capped rounds at 65 535 slots, one address short of an N = 65 536
/// deployment.
#[derive(Debug, Clone)]
pub struct TdmaSchedule {
    slot_duration: Seconds,
    /// Guard interval appended to each slot (propagation spread).
    guard: Seconds,
    assignments: HashMap<Addr, u32>, // addr → slot
    /// Occupancy bitmap, indexed by slot — keeps [`TdmaSchedule::assign`]
    /// and [`TdmaSchedule::assign_all`] O(1) per assignment instead of a
    /// scan over all existing assignments (O(N²) at 65k nodes).
    occupied: Vec<bool>,
    n_slots: u32,
}

impl TdmaSchedule {
    /// Creates a schedule with `n_slots` slots of `slot_duration` plus
    /// `guard` each.
    pub fn new(n_slots: u32, slot_duration: Seconds, guard: Seconds) -> Self {
        assert!(n_slots > 0 && slot_duration.value() > 0.0 && guard.value() >= 0.0);
        Self {
            slot_duration,
            guard,
            assignments: HashMap::new(),
            occupied: vec![false; n_slots as usize],
            n_slots,
        }
    }

    /// Sizes slots for a frame of `frame_bits` channel bits at `bit_rate`,
    /// with a guard covering the worst-case round-trip spread at
    /// `max_range_m` (sound speed `c`).
    pub fn for_frames(
        n_slots: u32,
        frame_bits: usize,
        bit_rate: f64,
        max_range_m: f64,
        sound_speed: f64,
    ) -> Self {
        let tx_time = frame_bits as f64 / bit_rate;
        let guard = 2.0 * max_range_m / sound_speed;
        Self::new(n_slots, Seconds(tx_time), Seconds(guard))
    }

    /// Assigns `addr` to `slot`. Returns `false` if the slot is taken or
    /// out of range.
    pub fn assign(&mut self, addr: Addr, slot: u32) -> bool {
        if slot >= self.n_slots || self.occupied[slot as usize] {
            return false;
        }
        self.assignments.insert(addr, slot);
        self.occupied[slot as usize] = true;
        true
    }

    /// Assigns every address in order to the first free slots. Returns the
    /// number assigned (stops when slots run out).
    pub fn assign_all(&mut self, addrs: &[Addr]) -> usize {
        let mut assigned = 0;
        let mut next = 0u32;
        for &a in addrs {
            while next < self.n_slots && self.occupied[next as usize] {
                next += 1;
            }
            if next >= self.n_slots {
                break;
            }
            self.assignments.insert(a, next);
            self.occupied[next as usize] = true;
            assigned += 1;
            next += 1;
        }
        assigned
    }

    /// Slot assigned to `addr`.
    pub fn slot_of(&self, addr: Addr) -> Option<u32> {
        self.assignments.get(&addr).copied()
    }

    /// Which slot is active at time `t` since the round beacon, or `None`
    /// if `t` is past the end of the round.
    pub fn slot_at(&self, t: Seconds) -> Option<u32> {
        let per_slot = self.slot_duration.value() + self.guard.value();
        if t.value() < 0.0 {
            return None;
        }
        let idx = (t.value() / per_slot) as u64;
        if idx < self.n_slots as u64 {
            Some(idx as u32)
        } else {
            None
        }
    }

    /// Which node owns the slot active at `t`.
    pub fn owner_at(&self, t: Seconds) -> Option<Addr> {
        let slot = self.slot_at(t)?;
        self.assignments.iter().find(|(_, &s)| s == slot).map(|(&a, _)| a)
    }

    /// Full round duration.
    pub fn round_duration(&self) -> Seconds {
        Seconds((self.slot_duration.value() + self.guard.value()) * self.n_slots as f64)
    }

    /// Fraction of round time spent on payload (vs. guard).
    pub fn efficiency(&self) -> f64 {
        self.slot_duration.value() / (self.slot_duration.value() + self.guard.value())
    }

    /// Aggregate network throughput for `payload_bits` of useful payload per
    /// slot, bits/s across the whole round.
    pub fn network_throughput(&self, payload_bits: usize) -> f64 {
        let used = self.assignments.len() as f64;
        used * payload_bits as f64 / self.round_duration().value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    #[test]
    fn assignment_rejects_conflicts() {
        let mut t = TdmaSchedule::new(4, Seconds(1.0), Seconds(0.1));
        assert!(t.assign(10, 0));
        assert!(!t.assign(11, 0), "slot already taken");
        assert!(!t.assign(12, 4), "slot out of range");
        assert!(t.assign(11, 3));
        assert_eq!(t.slot_of(10), Some(0));
        assert_eq!(t.slot_of(11), Some(3));
        assert_eq!(t.slot_of(99), None);
    }

    #[test]
    fn assign_all_fills_free_slots() {
        let mut t = TdmaSchedule::new(3, Seconds(1.0), Seconds(0.0));
        t.assign(7, 1);
        let n = t.assign_all(&[1, 2, 3]);
        assert_eq!(n, 2, "only slots 0 and 2 were free");
        assert_eq!(t.slot_of(1), Some(0));
        assert_eq!(t.slot_of(2), Some(2));
        assert_eq!(t.slot_of(3), None);
    }

    #[test]
    fn slot_timing() {
        let mut t = TdmaSchedule::new(3, Seconds(2.0), Seconds(0.5));
        t.assign(42, 1);
        assert_eq!(t.slot_at(Seconds(0.0)), Some(0));
        assert_eq!(t.slot_at(Seconds(2.6)), Some(1));
        assert_eq!(t.owner_at(Seconds(2.6)), Some(42));
        assert_eq!(t.owner_at(Seconds(0.5)), None, "slot 0 unowned");
        assert_eq!(t.slot_at(Seconds(8.0)), None, "past round end");
        assert!(approx_eq(t.round_duration().value(), 7.5, 1e-12));
    }

    #[test]
    fn for_frames_sizes_guard_from_range() {
        // 300 m, 1480 m/s → 405 ms round trip guard.
        let t = TdmaSchedule::for_frames(4, 256, 100.0, 300.0, 1480.0);
        assert!(approx_eq(t.guard.value(), 0.4054, 1e-3));
        assert!(approx_eq(t.slot_duration.value(), 2.56, 1e-9));
        // Guard overhead at 100 bps is modest.
        assert!(t.efficiency() > 0.8, "eff {}", t.efficiency());
    }

    #[test]
    fn holds_an_ocean_scale_address_space() {
        // One slot per member of a 70 000-node schedule — past both the u8
        // address space and the old u16 slot-index cap.
        let n = 70_000u32;
        let mut t = TdmaSchedule::new(n, Seconds(1.0), Seconds(0.0));
        let addrs: Vec<Addr> = (0..n).collect();
        assert_eq!(t.assign_all(&addrs), n as usize);
        assert_eq!(t.slot_of(0), Some(0));
        assert_eq!(t.slot_of(n - 1), Some(n - 1));
    }

    #[test]
    fn throughput_scales_with_assignments() {
        let mut t = TdmaSchedule::new(10, Seconds(1.0), Seconds(0.0));
        t.assign_all(&[1, 2, 3, 4, 5]);
        let thr = t.network_throughput(100);
        assert!(approx_eq(thr, 5.0 * 100.0 / 10.0, 1e-9));
    }
}
