//! Framed slotted ALOHA with window adaptation.
//!
//! For an unknown node population, the reader announces a contention window
//! of `w` slots; each unidentified node picks one uniformly and backscatters
//! its address there. The reader classifies every slot as idle, single
//! (success — that node is identified and told to shut up) or collision,
//! then adapts `w` toward the remaining population (Q-algorithm style:
//! too many collisions → double, too many idles → halve).

use crate::Addr;
use rand::{Rng, RngExt};

/// What the reader observed in one contention slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// Nobody answered.
    Idle,
    /// Exactly one node answered (identified).
    Single(Addr),
    /// Two or more nodes answered on top of each other.
    Collision,
}

/// Classifies a slot given the addresses that chose it.
pub fn classify_slot(respondents: &[Addr]) -> SlotOutcome {
    match respondents {
        [] => SlotOutcome::Idle,
        [one] => SlotOutcome::Single(*one),
        _ => SlotOutcome::Collision,
    }
}

/// Reader-side framed-ALOHA controller.
#[derive(Debug, Clone)]
pub struct AlohaReader {
    window: usize,
    min_window: usize,
    max_window: usize,
    /// Identified node addresses, in discovery order.
    pub identified: Vec<Addr>,
    /// Total slots spent.
    pub slots_used: u64,
    /// Total collisions observed.
    pub collisions: u64,
}

impl AlohaReader {
    /// Creates a controller with an initial window of `w` slots and the
    /// classic 256-slot window ceiling (the paper-scale default every
    /// single-reader deployment uses).
    pub fn new(w: usize) -> Self {
        Self::with_max_window(w, 256)
    }

    /// Creates a controller whose window may grow up to `max_window`
    /// slots — ocean-scale cells with thousands of contenders need more
    /// headroom than the classic 256-slot ceiling.
    pub fn with_max_window(w: usize, max_window: usize) -> Self {
        assert!(w >= 1 && max_window >= w);
        Self {
            window: w,
            min_window: 1,
            max_window,
            identified: Vec::new(),
            slots_used: 0,
            collisions: 0,
        }
    }

    /// Current contention window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Runs one contention round against the (hidden) set of unidentified
    /// nodes, using `rng` for their slot choices. Returns outcomes per slot.
    ///
    /// `pending` is mutated: identified nodes are removed.
    ///
    /// Slots are resolved with the abstract [`classify_slot`] rule (any two
    /// respondents collide). Use [`AlohaReader::run_round_with`] to plug in
    /// a physical-layer resolver instead.
    pub fn run_round<R: Rng + ?Sized>(
        &mut self,
        pending: &mut Vec<Addr>,
        rng: &mut R,
    ) -> Vec<SlotOutcome> {
        self.run_round_with(pending, rng, classify_slot)
    }

    /// Like [`AlohaReader::run_round`], but each slot is resolved by
    /// `resolve`, which maps the addresses that transmitted in the slot to
    /// a [`SlotOutcome`].
    ///
    /// This is the seam `vab-net` uses to replace the abstract
    /// "two respondents = collision" rule with physical-layer capture:
    /// superpose the respondents' received powers, decide capture by
    /// per-node SINR, and report `Single` only when one reply both captures
    /// the hydrophone and decodes. The resolver must return `Idle` only for
    /// empty slots and may return `Single(addr)` only for an `addr` that is
    /// actually in the slot — window adaptation and identification both
    /// trust it.
    pub fn run_round_with<R: Rng + ?Sized, F>(
        &mut self,
        pending: &mut Vec<Addr>,
        rng: &mut R,
        mut resolve: F,
    ) -> Vec<SlotOutcome>
    where
        F: FnMut(&[Addr]) -> SlotOutcome,
    {
        let w = self.window;
        let mut chosen: Vec<Vec<Addr>> = vec![Vec::new(); w];
        for &addr in pending.iter() {
            let s = rng.random_range(0..w);
            chosen[s].push(addr);
        }
        let outcomes: Vec<SlotOutcome> = chosen.iter().map(|v| resolve(v)).collect();
        let mut idles = 0usize;
        let mut colls = 0usize;
        for o in &outcomes {
            self.slots_used += 1;
            match o {
                SlotOutcome::Idle => idles += 1,
                SlotOutcome::Single(addr) => {
                    self.identified.push(*addr);
                    pending.retain(|&a| a != *addr);
                }
                SlotOutcome::Collision => {
                    colls += 1;
                    self.collisions += 1;
                }
            }
        }
        // Window adaptation: aim for ~one node per slot.
        if colls * 2 > w {
            self.window = (self.window * 2).min(self.max_window);
        } else if idles * 2 > w && colls == 0 {
            self.window = (self.window / 2).max(self.min_window);
        }
        outcomes
    }
}

/// Theoretical throughput of framed slotted ALOHA: the success probability
/// per slot with `n` contenders in `w` slots, `n/w·(1−1/w)^{n−1}`.
pub fn slot_success_probability(n: usize, w: usize) -> f64 {
    if n == 0 || w == 0 {
        return 0.0;
    }
    let n = n as f64;
    let w = w as f64;
    n / w * (1.0 - 1.0 / w).powf(n - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::rng::seeded;

    #[test]
    fn classification() {
        assert_eq!(classify_slot(&[]), SlotOutcome::Idle);
        assert_eq!(classify_slot(&[7]), SlotOutcome::Single(7));
        assert_eq!(classify_slot(&[1, 2]), SlotOutcome::Collision);
    }

    #[test]
    fn eventually_identifies_everyone() {
        let mut rng = seeded(71);
        let mut reader = AlohaReader::new(4);
        let mut pending: Vec<Addr> = (1..=20).collect();
        let mut rounds = 0;
        while !pending.is_empty() && rounds < 100 {
            reader.run_round(&mut pending, &mut rng);
            rounds += 1;
        }
        assert!(pending.is_empty(), "{} nodes never identified", pending.len());
        let mut ids = reader.identified.clone();
        ids.sort();
        assert_eq!(ids, (1..=20).collect::<Vec<Addr>>());
    }

    #[test]
    fn injected_resolver_can_capture_collisions() {
        // A resolver where the lowest address always captures the slot:
        // every occupied slot identifies someone, so no collisions are ever
        // recorded and inventory still completes.
        let mut rng = seeded(75);
        let mut reader = AlohaReader::new(2);
        let mut pending: Vec<Addr> = (1..=12).collect();
        let mut rounds = 0;
        while !pending.is_empty() && rounds < 200 {
            reader.run_round_with(&mut pending, &mut rng, |r| match r {
                [] => SlotOutcome::Idle,
                _ => SlotOutcome::Single(*r.iter().min().unwrap()),
            });
            rounds += 1;
        }
        assert!(pending.is_empty(), "{} nodes never identified", pending.len());
        assert_eq!(reader.collisions, 0, "capture resolver never reports collisions");
    }

    #[test]
    fn window_grows_under_collisions() {
        let mut rng = seeded(72);
        let mut reader = AlohaReader::new(2);
        let mut pending: Vec<Addr> = (1..=50).collect();
        reader.run_round(&mut pending, &mut rng);
        assert!(reader.window() > 2, "50 nodes in 2 slots must collide");
    }

    #[test]
    fn window_shrinks_when_empty() {
        let mut rng = seeded(73);
        let mut reader = AlohaReader::new(64);
        let mut pending: Vec<Addr> = vec![1];
        reader.run_round(&mut pending, &mut rng);
        assert!(reader.window() < 64);
    }

    #[test]
    fn efficiency_near_theory() {
        // With w ≈ n the per-slot success probability approaches 1/e; total
        // slots to identify n nodes ≈ e·n. Allow generous slack for the
        // adaptive transient.
        let mut rng = seeded(74);
        let mut reader = AlohaReader::new(32);
        let mut pending: Vec<Addr> = (1..=32).collect();
        while !pending.is_empty() {
            reader.run_round(&mut pending, &mut rng);
        }
        let slots_per_node = reader.slots_used as f64 / 32.0;
        assert!(
            slots_per_node > 1.5 && slots_per_node < 6.0,
            "slots/node = {slots_per_node} (theory ≈ e ≈ 2.7)"
        );
    }

    #[test]
    fn success_probability_peaks_at_w_equals_n() {
        let n = 16;
        let at_n = slot_success_probability(n, n);
        assert!(at_n > slot_success_probability(n, 4));
        assert!(at_n > slot_success_probability(n, 128));
        // Peak value tends to 1/e for large n.
        assert!((at_n - (-1.0f64).exp()).abs() < 0.05, "{at_n}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(slot_success_probability(0, 8), 0.0);
        assert_eq!(slot_success_probability(8, 0), 0.0);
    }
}
