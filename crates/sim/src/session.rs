//! A complete reader↔node session at the waveform level.
//!
//! Everything a deployment actually does, with no shortcuts on either leg:
//!
//! 1. the reader PIE-keys a command frame onto its carrier;
//! 2. the envelope crosses the water (multipath included) and the node's
//!    µW envelope detector slices and decodes it;
//! 3. the node state machine reacts; a `Query` makes it backscatter its
//!    coded reply on the modulation switch;
//! 4. the retro round trip, carrier leak and noise land at the reader,
//!    whose synchronizer/demodulator/decoder recover the frame.
//!
//! This is the path the `full_session` example and the deepest integration
//! tests drive.

use crate::baseline::FrontEnd;
use crate::samplelevel::{decode_uplink, transport_uplink_scaled};
use crate::scenario::Scenario;
use rand::rngs::StdRng;
use vab_acoustics::channel::ChannelModel;
use vab_core::node::{Node, NodeEvent};
use vab_fault::TrialFaults;
use vab_link::bits::bytes_to_bits;
use vab_link::frame::{Frame, FrameError};
use vab_phy::downlink::{pie_encode, PieParams};
use vab_util::complex::C64;
use vab_util::rng::complex_gaussian;

/// Everything that happened in one query/reply exchange.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Did the node's envelope detector decode the downlink command?
    pub downlink_ok: bool,
    /// What the node did.
    pub node_event_kind: &'static str,
    /// The reply frame recovered at the reader, if any.
    pub uplink_frame: Result<Frame, SessionError>,
}

/// Why an exchange produced no uplink frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The node never decoded the command (downlink lost).
    DownlinkLost,
    /// The node had nothing to say (not a query, or node not listening).
    NoReply,
    /// The reader's synchronizer never locked on the backscatter.
    SyncLost,
    /// The frame decoded but failed CRC/length checks.
    Frame(FrameError),
}

/// Runs one full exchange: `command` from the reader to `node` and back.
///
/// The downlink leg runs at the PIE envelope rate through the real channel;
/// the uplink leg reuses the sample-level backscatter transport. Both legs
/// add noise at the scenario's effective noise floor.
pub fn run_exchange(
    scenario: &Scenario,
    node: &mut Node,
    command: &Frame,
    rng: &mut StdRng,
) -> SessionOutcome {
    run_exchange_faulted(scenario, node, command, &TrialFaults::nominal(), rng)
}

/// [`run_exchange`] under injected faults:
///
/// * element faults rebuild the node's front end with the failed/stuck
///   switches applied (a dead pair stops contributing to the retro beam);
/// * resonance drift (`depth_scale`) and channel impairments (burst duty,
///   bubble fade) scale the modulated reflection amplitude;
/// * a surface-motion dropout suppresses the uplink entirely — the reader's
///   synchronizer never locks.
///
/// Protocol faults (corrupted ACKs, reader restarts) are *not* consumed
/// here: they live above the waveform exchange, in the caller's ARQ/MAC
/// loop.
pub fn run_exchange_faulted(
    scenario: &Scenario,
    node: &mut Node,
    command: &Frame,
    faults: &TrialFaults,
    rng: &mut StdRng,
) -> SessionOutcome {
    let _span = vab_obs::Span::enter("sim.session", "exchange");
    let pie = PieParams::vab_default();
    let fe = {
        let base = scenario.front_end();
        if faults.elements.is_empty() {
            base
        } else if let Some(array) = base.array() {
            let mut faulted = array.clone();
            faulted.apply_element_faults(&faults.elements);
            FrontEnd::from_array(faulted, scenario.carrier())
        } else {
            base // single-element systems have no switches to fail
        }
    };
    let amp_scale =
        faults.depth_scale.max(0.0) * 10f64.powf(-faults.channel.extra_loss_db() / 20.0);

    // --- Downlink leg.
    let env = pie_encode(&bytes_to_bits(&command.to_bytes()), &pie);
    let source_amp = 10f64.powf(scenario.reader.source_level_db / 20.0);
    let tx: Vec<C64> = env.iter().map(|&e| C64::real(source_amp * e)).collect();
    let ch = ChannelModel::new(
        scenario.env.clone(),
        scenario.reader_pos,
        scenario.node_pos,
        scenario.carrier(),
    );
    let ir = ch.impulse_response(pie.fs, rng);
    // Ambient noise at the node (the node has no carrier leak problem —
    // the carrier IS its power and its signal).
    let ambient_sigma =
        (10f64.powf(scenario.env.noise_psd(scenario.carrier()).value() / 10.0) * pie.fs).sqrt();
    let incident: Vec<C64> = ir
        .apply_baseband(&tx)
        .into_iter()
        .map(|v| v + complex_gaussian(rng, ambient_sigma))
        .collect();
    let event = node.handle_downlink_waveform(&incident, &pie);
    let (downlink_ok, kind) = match &event {
        NodeEvent::Reply { .. } => (true, "reply"),
        NodeEvent::SlotAssigned(_) => (true, "slot_assigned"),
        // `None` is ambiguous (lost downlink vs. ignored command); the
        // caller knows which command it sent.
        NodeEvent::None => (false, "none"),
    };

    // --- Uplink leg, if the node replied.
    let uplink_frame = match event {
        NodeEvent::Reply { .. } if faults.channel.dropout => Err(SessionError::SyncLost),
        NodeEvent::Reply { channel_bits, .. } => {
            match transport_uplink_scaled(scenario, &fe, &channel_bits, amp_scale, rng) {
                None => Err(SessionError::SyncLost),
                Some(up) => {
                    let bits = decode_uplink(&node.config.link, &up);
                    let bytes = vab_link::bits::bits_to_bytes(&bits);
                    Frame::from_bytes(&bytes).map_err(SessionError::Frame)
                }
            }
        }
        _ if !downlink_ok => Err(SessionError::DownlinkLost),
        _ => Err(SessionError::NoReply),
    };
    if matches!(node.state(), vab_core::node::NodeState::Replying) {
        node.reply_done();
    }
    vab_obs::event!(
        "sim.session",
        "exchange_done",
        downlink_ok = downlink_ok,
        node_event = kind,
        uplink_ok = uplink_frame.is_ok(),
    );
    SessionOutcome { downlink_ok, node_event_kind: kind, uplink_frame }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::SystemKind;
    use vab_core::array::VanAttaArray;
    use vab_core::commands::Command;
    use vab_core::node::NodeConfig;
    use vab_util::rng::seeded;
    use vab_util::units::{Hertz, Meters};

    fn node_at(addr: u8) -> Node {
        let mut n = Node::new(NodeConfig::new(addr), VanAttaArray::vab_default(4, Hertz(18_500.0)));
        n.force_powered();
        n
    }

    #[test]
    fn full_waveform_exchange_at_100m() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(100.0));
        let mut node = node_at(0x31);
        node.queue_reading(vec![0xCA, 0xFE]);
        let query = Frame::new(0x31, 0x00, 0, Command::Query.to_payload());
        let mut rng = seeded(501);
        let out = run_exchange(&s, &mut node, &query, &mut rng);
        assert!(out.downlink_ok, "downlink lost at 100 m");
        let frame = out.uplink_frame.expect("uplink decodes");
        assert_eq!(frame.payload, vec![0xCA, 0xFE]);
        assert_eq!(frame.src, 0x31);
        assert_eq!(frame.dest, 0x00);
    }

    #[test]
    fn exchange_at_the_headline_range() {
        // 300 m: the downlink PIE (huge SNR — it rides the full carrier) and
        // the coded uplink must both survive.
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(300.0));
        let mut node = node_at(0x32);
        node.queue_reading(vec![7; 8]);
        let query = Frame::new(0x32, 0x00, 0, Command::Query.to_payload());
        let mut rng = seeded(502);
        let out = run_exchange(&s, &mut node, &query, &mut rng);
        assert!(out.downlink_ok);
        let frame = out.uplink_frame.expect("uplink decodes at 300 m");
        assert_eq!(frame.payload, vec![7; 8]);
    }

    #[test]
    fn wrong_address_yields_no_reply() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(80.0));
        let mut node = node_at(0x31);
        let query = Frame::new(0x77, 0x00, 0, Command::Query.to_payload());
        let mut rng = seeded(503);
        let out = run_exchange(&s, &mut node, &query, &mut rng);
        // The waveform decoded fine but the command was not for this node.
        assert!(!out.downlink_ok);
        assert_eq!(out.uplink_frame, Err(SessionError::DownlinkLost));
    }

    #[test]
    fn dropout_fault_loses_the_uplink() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(100.0));
        let mut node = node_at(0x31);
        node.queue_reading(vec![0xAB]);
        let query = Frame::new(0x31, 0x00, 0, Command::Query.to_payload());
        let mut faults = TrialFaults::nominal();
        faults.channel.dropout = true;
        let mut rng = seeded(501); // known-good downlink seed at 100 m
        let out = run_exchange_faulted(&s, &mut node, &query, &faults, &mut rng);
        assert!(out.downlink_ok, "dropout hits the uplink leg only");
        assert_eq!(out.uplink_frame, Err(SessionError::SyncLost));
    }

    #[test]
    fn deep_fade_fault_breaks_a_marginal_exchange() {
        // 300 m works nominally (see exchange_at_the_headline_range); a
        // 25 dB bubble-cloud fade must take it down.
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(300.0));
        let mut node = node_at(0x32);
        node.queue_reading(vec![7; 8]);
        let query = Frame::new(0x32, 0x00, 0, Command::Query.to_payload());
        let mut faults = TrialFaults::nominal();
        faults.channel.fade_db = 25.0;
        let mut rng = seeded(502);
        let out = run_exchange_faulted(&s, &mut node, &query, &faults, &mut rng);
        assert!(out.uplink_frame.is_err(), "25 dB fade at 300 m must kill the frame");
    }

    #[test]
    fn nominal_faults_reproduce_the_unfaulted_exchange() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(100.0));
        let query = Frame::new(0x31, 0x00, 0, Command::Query.to_payload());
        let mut n1 = node_at(0x31);
        n1.queue_reading(vec![0xCA, 0xFE]);
        let a = run_exchange(&s, &mut n1, &query, &mut seeded(501));
        let mut n2 = node_at(0x31);
        n2.queue_reading(vec![0xCA, 0xFE]);
        let b =
            run_exchange_faulted(&s, &mut n2, &query, &TrialFaults::nominal(), &mut seeded(501));
        assert_eq!(a.downlink_ok, b.downlink_ok);
        assert_eq!(
            a.uplink_frame.expect("decodes").payload,
            b.uplink_frame.expect("decodes").payload
        );
    }

    #[test]
    fn pab_exchange_works_close_fails_far() {
        let near = Scenario::river(SystemKind::Pab, Meters(8.0));
        let mut node = node_at(0x31);
        node.queue_reading(vec![1]);
        node.config.link = vab_link::frame::LinkConfig::uncoded();
        let query = Frame::new(0x31, 0x00, 0, Command::Query.to_payload());
        let mut rng = seeded(504);
        let mut near_s = near.clone();
        near_s.link_override = Some(vab_link::frame::LinkConfig::uncoded());
        let out = run_exchange(&near_s, &mut node, &query, &mut rng);
        assert!(out.uplink_frame.is_ok(), "PAB at 8 m should work: {:?}", out.uplink_frame);

        // Far: 300 m is far beyond PAB's closed range.
        let mut far = Scenario::river(SystemKind::Pab, Meters(300.0));
        far.link_override = Some(vab_link::frame::LinkConfig::uncoded());
        node.queue_reading(vec![2]);
        let out = run_exchange(&far, &mut node, &query, &mut rng);
        assert!(out.uplink_frame.is_err(), "PAB at 300 m must fail");
    }
}
