//! Result containers and CSV emission.
//!
//! Experiments print CSV tables to stdout (and optionally to files) so every
//! figure/table of the paper can be regenerated as a diff-able artifact
//! without a serialization dependency.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One point of a BER-vs-X sweep.
#[derive(Debug, Clone, Copy)]
pub struct BerPoint {
    /// The swept quantity (range in m, angle in degrees, …).
    pub x: f64,
    /// Measured bit error rate.
    pub ber: f64,
    /// Measured packet error rate.
    pub per: f64,
    /// Mean Eb/N0 across trials, dB.
    pub ebn0_db: f64,
    /// Bits observed.
    pub bits: u64,
    /// Trials run.
    pub trials: u64,
}

/// A simple CSV table builder.
#[derive(Debug, Clone)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        assert!(!header.is_empty());
        Self { header, rows: Vec::new() }
    }

    /// Appends a row of formatted values; must match the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Appends a row of floats with `prec` decimal places.
    pub fn row_f64<I: IntoIterator<Item = f64>>(&mut self, cells: I, prec: usize) {
        self.row(cells.into_iter().map(|v| format!("{v:.prec$}")));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the CSV. Cells containing commas, quotes, newlines, or
    /// leading/trailing whitespace are quoted (RFC 4180), so multi-line
    /// scenario descriptions survive a round trip through other parsers.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            let needs_quoting = cell.contains(',')
                || cell.contains('"')
                || cell.contains('\n')
                || cell.contains('\r')
                || cell.trim() != cell;
            if needs_quoting {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ =
            writeln!(out, "{}", self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Renders an aligned text table for terminal output.
    pub fn to_pretty(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Writes the CSV to a file.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut t = CsvTable::new(["range_m", "ber"]);
        t.row_f64([100.0, 0.001234], 4);
        t.row(["300", "1e-3"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("range_m,ber\n"));
        assert!(csv.contains("100.0000,0.0012"));
        assert!(csv.contains("300,1e-3"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = CsvTable::new(["name", "value"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_quotes_newlines_and_edge_whitespace() {
        let mut t = CsvTable::new(["scenario", "note"]);
        t.row(["river\n300 m", " padded "]);
        t.row(["tab\tinside", "trailing "]);
        let csv = t.to_csv();
        assert!(csv.contains("\"river\n300 m\""), "newline cell must be quoted: {csv}");
        assert!(csv.contains("\" padded \""), "edge whitespace must be quoted: {csv}");
        assert!(csv.contains("\"trailing \""), "trailing space must be quoted: {csv}");
        assert!(csv.contains("tab\tinside"), "interior tabs need no quoting");
        assert!(!csv.contains("\"tab\tinside\""));
        // The quoted newline must not add a logical record: header + 2 rows
        // = 3 records, but 4 physical lines (one cell spans two).
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn pretty_alignment() {
        let mut t = CsvTable::new(["x", "long_column"]);
        t.row(["1", "2"]);
        let pretty = t.to_pretty();
        let lines: Vec<&str> = pretty.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_rejected() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn file_roundtrip() {
        let mut t = CsvTable::new(["a"]);
        t.row(["1"]);
        let dir = std::env::temp_dir().join("vab_csv_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("t.csv");
        t.write_csv(&p).expect("write");
        let back = std::fs::read_to_string(&p).expect("read");
        assert_eq!(back, "a\n1\n");
    }
}
