//! # vab-sim — the end-to-end VAB experiment engine
//!
//! Replaces the paper's river/ocean testbed. Two simulation fidelities that
//! cross-validate:
//!
//! * **Link budget** ([`linkbudget`]) — the sonar equation plus closed-form
//!   modulation theory gives a per-trial channel-bit error probability;
//!   bits then flow through the *real* link-layer codecs. Fast enough for
//!   thousands-of-trial Monte Carlo sweeps ([`montecarlo`]).
//! * **Sample level** ([`samplelevel`]) — complex-baseband waveforms through
//!   the image-method multipath channel, the actual modulator, carrier
//!   leak, synchronizer and demodulator. Slow; used at a handful of
//!   operating points to validate the fast path.
//!
//! [`baseline`] defines the comparison systems (PAB-like single-element
//! backscatter, conventional non-retrodirective array); [`scenario`] wires
//! geometry + environment + system; [`metrics`] collects results and writes
//! CSV.
//!
//! ## Example: close a link budget for the canonical river trial
//!
//! ```
//! use vab_sim::{LinkBudget, Scenario, SystemKind};
//! use vab_util::units::Meters;
//!
//! let scenario = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(100.0));
//! let lb = LinkBudget::compute(&scenario);
//! assert!(lb.ebn0_db > 10.0, "a 100 m river link closes comfortably");
//! assert!(lb.uncoded_ber() < 1e-3);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod campaign;
pub mod chansource;
pub mod linkbudget;
pub mod metrics;
pub mod montecarlo;
pub mod samplelevel;
pub mod scenario;
pub mod session;

pub use baseline::SystemKind;
pub use campaign::{run_campaign, run_campaign_slice, CampaignConfig, CampaignReport};
pub use chansource::{BankSource, ChannelSource, RealizedChannel, SyntheticSource};
pub use linkbudget::{LinkBudget, ReaderParams};
pub use metrics::{BerPoint, CsvTable};
pub use montecarlo::{run_ber_sweep, MonteCarloConfig, TrialEngine};
pub use scenario::Scenario;
pub use session::{run_exchange, SessionError, SessionOutcome};
