//! Seeded, parallel Monte Carlo over channel realizations.
//!
//! Each trial draws a fresh multipath/Doppler realization (the analogue of
//! one field trial among the paper's 1,500), runs payload bits through the
//! selected engine, and accumulates exact error counts. Trials shard across
//! threads with `std::thread::scope`; every shard derives its RNG stream from the
//! master seed, so results are bit-reproducible regardless of thread count.

use crate::baseline::FrontEnd;
use crate::chansource::{ChannelSource, SyntheticSource};
use crate::linkbudget::LinkBudget;
use crate::metrics::BerPoint;
use crate::samplelevel::run_sample_trial_via;
use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;
use vab_acoustics::channel::ChannelModel;
use vab_fault::{FaultPlan, TrialFaults};
use vab_phy::ber::{ber_noncoherent_orthogonal, BerCounter};
use vab_util::rng::{derive_seed, random_bits, seeded};
use vab_util::stats::RunningStats;

/// Dedicated stream tag for the deterministic "does this packet land in a
/// harvest blackout window" draw (independent of the channel RNG stream).
const BLACKOUT_STREAM: u64 = 0x0B1A_C007;

/// Typed failure of a Monte Carlo run — the driver's worker threads can
/// die (a panic in an engine), and callers automating large campaigns want
/// an error they can log and skip instead of a process abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonteCarloError {
    /// A worker thread panicked; carries the shard index and the panic
    /// message when it was a string.
    WorkerPanicked {
        /// Which shard died.
        shard: usize,
        /// Best-effort panic payload.
        message: String,
    },
}

impl fmt::Display for MonteCarloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WorkerPanicked { shard, message } => {
                write!(f, "Monte Carlo worker {shard} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for MonteCarloError {}

/// Best-effort rendering of a worker panic payload. `panic!` with a format
/// string yields `String`, a literal yields `&str`; `std::panic::panic_any`
/// can carry anything, in which case the concrete type is unrecoverable
/// from `dyn Any` — report the `TypeId` so the payload is at least
/// distinguishable instead of silently dropping it.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        format!("non-string panic payload ({:?})", payload.type_id())
    }
}

/// Which simulation fidelity runs each trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialEngine {
    /// Sonar equation + closed-form channel-bit error probability + real
    /// link-layer codecs. Fast.
    LinkBudget,
    /// Full complex-baseband DSP through the multipath channel. Slow.
    SampleLevel,
}

/// Monte Carlo configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Independent channel realizations.
    pub trials: usize,
    /// Information bits per trial (one "packet").
    pub bits_per_trial: usize,
    /// Master seed.
    pub seed: u64,
    /// Simulation fidelity.
    pub engine: TrialEngine,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl MonteCarloConfig {
    /// A sensible default: 100 trials × 256 bits, link-budget engine.
    pub fn fast(seed: u64) -> Self {
        Self { trials: 100, bits_per_trial: 256, seed, engine: TrialEngine::LinkBudget, threads: 0 }
    }

    /// Sample-level validation config (fewer trials — it is ~1000× slower).
    pub fn sample_level(seed: u64) -> Self {
        Self { trials: 10, bits_per_trial: 128, seed, engine: TrialEngine::SampleLevel, threads: 0 }
    }
}

/// Aggregated result of one operating point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Exact bit-error bookkeeping (aggregate over all trials).
    pub ber: BerCounter,
    /// Packets with ≥ 1 residual error.
    pub packet_errors: u64,
    /// Trials run.
    pub trials: u64,
    /// Per-trial effective Eb/N0 statistics (dB, fading included).
    pub ebn0: RunningStats,
    /// Per-trial BER values, one per channel realization ("deployment").
    pub trial_bers: Vec<f64>,
}

impl PointResult {
    /// Median per-deployment BER — the statistic a field campaign actually
    /// reports: each trial is one deployment geometry, and the published
    /// "range at BER 10⁻³" reflects the *typical* deployment, with fade
    /// outliers visible as scatter rather than pulling the mean.
    pub fn median_ber(&self) -> f64 {
        if self.trial_bers.is_empty() {
            0.0
        } else {
            vab_util::stats::median(&self.trial_bers)
        }
    }

    /// Packet error rate.
    pub fn per(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.packet_errors as f64 / self.trials as f64
        }
    }

    /// Converts to a plot point at sweep coordinate `x`.
    pub fn to_point(&self, x: f64) -> BerPoint {
        BerPoint {
            x,
            ber: self.ber.ber(),
            per: self.per(),
            ebn0_db: self.ebn0.mean(),
            bits: self.ber.bits(),
            trials: self.trials,
        }
    }
}

/// Round-trip multipath factor for one channel realization, in dB of
/// received *power* relative to the direct-path-only budget.
///
/// The two architectures interact with multipath in fundamentally different
/// ways — this is one of the paper's quiet advantages:
///
/// * **Retrodirective (VAB)**: a Van Atta array phase-conjugates whatever
///   wavefront hits it, so *each multipath component retraces its own path*
///   and the round-trip contributions add with aligned phase — a **power
///   sum** `Σ|aᵢ|²` (the time-reversal property). Multipath never fades the
///   link; it mildly helps. A small conjugation-efficiency factor accounts
///   for the finite aperture and element pattern at bounce angles.
/// * **Point scatterer (PAB) / conventional array**: down- and uplink each
///   see the coherent sum `Σ aᵢ·e^{jθᵢ}`; reciprocity squares it, so the
///   received power goes as `|H|⁴` — deep, bursty fades.
///
/// Bounce-path phases get a per-trial random component (platform sway of a
/// centimetre re-rolls them at 18.5 kHz).
///
/// Public so `vab-net` can derive per-node multipath fading from the same
/// image-method realization the Monte Carlo engine uses — a spatial
/// deployment is just many scenarios sharing one environment.
pub fn fading_delta_db(scenario: &Scenario, rng: &mut StdRng) -> f64 {
    let _t = vab_obs::time_stage("sim.channel_realization");
    let ch = ChannelModel::new(
        scenario.env.clone(),
        scenario.reader_pos,
        scenario.node_pos,
        scenario.carrier(),
    );
    let arrivals = ch.arrivals(rng);
    if arrivals.is_empty() {
        return 0.0;
    }
    let direct = arrivals
        .iter()
        .find(|a| a.is_direct())
        .map(|a| a.gain.abs())
        .unwrap_or_else(|| arrivals[0].gain.abs());
    if direct <= 0.0 {
        return 0.0;
    }
    match scenario.system {
        crate::baseline::SystemKind::Vab { .. } => {
            // Power sum over retraced paths; bounce paths conjugate with
            // ~60 % amplitude efficiency (finite aperture, element pattern
            // at the bounce elevation angles).
            const CONJ_EFF: f64 = 0.6;
            let total: f64 = arrivals
                .iter()
                .map(|a| {
                    let eff = if a.is_direct() { 1.0 } else { CONJ_EFF };
                    (eff * a.gain.abs()).powi(2)
                })
                .sum();
            10.0 * (total / (direct * direct)).log10()
        }
        _ => {
            let h: vab_util::complex::C64 = arrivals
                .iter()
                .map(|a| {
                    let phase =
                        if a.is_direct() { 0.0 } else { rng.random::<f64>() * vab_util::TAU };
                    a.gain
                        * vab_util::complex::C64::cis(
                            -vab_util::TAU * scenario.carrier().value() * a.delay_s + phase,
                        )
                })
                .sum();
            // The narrowband null cannot be arbitrarily deep across the
            // whole signal band: chips occupy ~4× the bit rate, so paths
            // separated by more than a chip period decorrelate and leave a
            // frequency-diversity floor on the flat-fade depth.
            let ratio = (h.abs() / direct).max(0.35);
            // Amplitude ratio each way → ratio² round-trip amplitude →
            // ratio⁴ in power.
            40.0 * ratio.log10()
        }
    }
}

/// One link-budget-engine trial: returns (bit errors, packet error, Eb/N0 dB).
/// `delta_db` is an additive fault-injection term on the effective Eb/N0
/// (0.0 for nominal trials).
fn link_budget_trial(
    scenario: &Scenario,
    fe: &FrontEnd,
    bits_per_trial: usize,
    rng: &mut StdRng,
    delta_db: f64,
) -> (usize, bool, f64) {
    let _t = vab_obs::time_stage("sim.linkbudget_trial");
    let base = LinkBudget::compute_with_front_end(scenario, fe);
    let ebn0_db = base.ebn0_db + fading_delta_db(scenario, rng) + delta_db;
    let ebn0_lin = 10f64.powf(ebn0_db / 10.0);
    let link = scenario.link_config();
    // Energy per *channel* bit is the info-bit energy × code rate.
    let ecn0 = ebn0_lin * link.fec.rate();
    let p_chan = ber_noncoherent_orthogonal(ecn0);
    // Real codecs, synthetic channel: flip channel bits i.i.d.
    let info = random_bits(rng, bits_per_trial);
    let mut coded = {
        let mut b = info.clone();
        if link.whitening {
            b = vab_link::whiten::whiten(&b);
        }
        b = link.fec.encode(&b);
        if let Some(il) = &link.interleaver {
            b = il.interleave(&b);
        }
        b
    };
    let decoded = if link.fec == vab_link::fec::Fec::Conv {
        // The reader decodes convolutional codes with *soft* Viterbi. Model
        // the per-channel-bit soft metric as a unit signal in Gaussian
        // noise whose sigma reproduces the raw error probability p_chan.
        let sigma =
            if p_chan >= 0.5 { 1e6 } else { 1.0 / vab_util::special::q_inv(p_chan.max(1e-12)) };
        let mut soft: Vec<f64> = coded
            .iter()
            .map(|&b| {
                let s = if b { 1.0 } else { -1.0 };
                s + sigma * vab_util::rng::gaussian(rng)
            })
            .collect();
        if let Some(il) = &link.interleaver {
            let block = il.block_len();
            soft.truncate(soft.len() / block * block);
            soft = il.deinterleave_soft(&soft);
        }
        let mut b = vab_link::fec::conv_decode_soft(&soft);
        if link.whitening {
            b = vab_link::whiten::whiten(&b);
        }
        b
    } else {
        for bit in coded.iter_mut() {
            if rng.random::<f64>() < p_chan {
                *bit = !*bit;
            }
        }
        let mut b = coded;
        if let Some(il) = &link.interleaver {
            let block = il.block_len();
            b.truncate(b.len() / block * block);
            b = il.deinterleave(&b);
        }
        b = link.fec.decode(&b);
        if link.whitening {
            b = vab_link::whiten::whiten(&b);
        }
        b
    };
    let errors = info
        .iter()
        .zip(decoded.iter().chain(std::iter::repeat(&false)))
        .filter(|(a, b)| a != b)
        .count();
    (errors, errors > 0, ebn0_db)
}

/// How faults reach the trials of one operating point.
#[derive(Debug, Clone, Copy)]
enum FaultSource<'a> {
    /// No fault injection (nominal physics).
    None,
    /// Per-trial faults drawn from the plan (fault sweeps, determinism
    /// tests): trial `t` gets `plan.trial_faults(t, …)`.
    Plan(&'a FaultPlan),
    /// The same pre-sampled faults for every trial of this point (the
    /// campaign samples faults once per deployment and runs one packet).
    Fixed(&'a TrialFaults),
}

/// Translates one trial's faults into the engine-level impairment:
/// `(front-end override, Eb/N0 delta dB, reply lost, reply truncated)`.
fn trial_impairment(
    scenario: &Scenario,
    fe: &FrontEnd,
    faults: &TrialFaults,
    trial: u64,
) -> (Option<FrontEnd>, f64, bool, bool) {
    let fe_override = if faults.elements.is_empty() {
        None
    } else {
        fe.array().map(|array| {
            let mut faulted = array.clone();
            faulted.apply_element_faults(&faults.elements);
            FrontEnd::from_array(faulted, scenario.carrier())
        })
    };
    // Modulation-depth loss from resonance drift scales received *power*
    // as amplitude²; channel impairments subtract straight dB.
    let delta_db = 20.0 * faults.depth_scale.max(1e-9).log10() - faults.channel.extra_loss_db();
    let mut lost = faults.channel.dropout;
    if faults.energy.blackout_frac > 0.0 {
        // Did this packet's wake-up land inside the blackout window? A
        // dedicated deterministic draw keyed on the trial index keeps the
        // channel RNG stream untouched.
        let u = (derive_seed(BLACKOUT_STREAM, trial) % 4096) as f64 / 4096.0;
        lost |= u < faults.energy.blackout_frac;
    }
    (fe_override, delta_db, lost, faults.energy.brownout_mid_reply)
}

/// Runs all trials for one operating point.
pub fn run_point(scenario: &Scenario, cfg: &MonteCarloConfig) -> PointResult {
    let fe = scenario.front_end();
    run_point_with_front_end(scenario, &fe, cfg)
}

/// Like [`run_point`] but with an externally-built front end (ablations
/// pass modified arrays — failed elements, mismatched lines, custom states).
pub fn run_point_with_front_end(
    scenario: &Scenario,
    fe: &FrontEnd,
    cfg: &MonteCarloConfig,
) -> PointResult {
    try_run_point_with_front_end(scenario, fe, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_point_with_front_end`]: worker-thread panics surface as
/// a typed [`MonteCarloError`] instead of aborting the caller.
pub fn try_run_point_with_front_end(
    scenario: &Scenario,
    fe: &FrontEnd,
    cfg: &MonteCarloConfig,
) -> Result<PointResult, MonteCarloError> {
    run_point_impl(scenario, fe, cfg, FaultSource::None, &SyntheticSource)
}

/// [`run_point`] with the sample-level channel supplied by an arbitrary
/// [`ChannelSource`] — the replay entry point: pass a
/// [`crate::chansource::BankSource`] and every trial convolves against the
/// recorded TVIR bank instead of synthesizing a channel. Only meaningful
/// with [`TrialEngine::SampleLevel`] (the link-budget engine has no
/// waveform to replay).
pub fn run_point_with_source(
    scenario: &Scenario,
    cfg: &MonteCarloConfig,
    source: &dyn ChannelSource,
) -> PointResult {
    let fe = scenario.front_end();
    run_point_impl(scenario, &fe, cfg, FaultSource::None, source).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_point`] under a deterministic fault plan: trial `t` experiences
/// `plan.trial_faults(t, n_elements)` — element failures rebuild the front
/// end, resonance drift and channel impairments shift the effective Eb/N0,
/// blackouts/dropouts lose the packet, mid-reply brownouts truncate it.
pub fn run_point_faulted(
    scenario: &Scenario,
    cfg: &MonteCarloConfig,
    plan: &FaultPlan,
) -> PointResult {
    let fe = scenario.front_end();
    run_point_impl(scenario, &fe, cfg, FaultSource::Plan(plan), &SyntheticSource)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_point`] with one pre-sampled [`TrialFaults`] applied to every
/// trial of the point (the campaign path: faults are sampled per
/// deployment, and each deployment is a single-packet point).
pub fn run_point_with_trial_faults(
    scenario: &Scenario,
    fe: &FrontEnd,
    cfg: &MonteCarloConfig,
    faults: &TrialFaults,
) -> PointResult {
    run_point_impl(scenario, fe, cfg, FaultSource::Fixed(faults), &SyntheticSource)
        .unwrap_or_else(|e| panic!("{e}"))
}

fn run_point_impl(
    scenario: &Scenario,
    fe: &FrontEnd,
    cfg: &MonteCarloConfig,
    faults: FaultSource<'_>,
    source: &dyn ChannelSource,
) -> Result<PointResult, MonteCarloError> {
    let _span = vab_obs::Span::enter("sim.montecarlo", "run_point");
    let threads =
        if cfg.threads == 0 { vab_util::threads() } else { cfg.threads }.min(cfg.trials.max(1));
    let trials_per = cfg.trials.div_ceil(threads);
    let n_elements = scenario.system.n_elements();
    let mut shards: Vec<Result<PointResult, MonteCarloError>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let fe = &fe;
            let scenario = &scenario;
            let faults = &faults;
            let source = &source;
            let lo = t * trials_per;
            let hi = ((t + 1) * trials_per).min(cfg.trials);
            if lo >= hi {
                continue;
            }
            handles.push((
                t,
                scope.spawn(move || {
                    let mut ber = BerCounter::new();
                    let mut packet_errors = 0u64;
                    let mut ebn0 = RunningStats::new();
                    let mut trial_bers = Vec::with_capacity(hi - lo);
                    for trial in lo..hi {
                        let mut rng = seeded(derive_seed(cfg.seed, trial as u64));
                        let trial_faults = match faults {
                            FaultSource::None => None,
                            FaultSource::Plan(p) => Some(p.trial_faults(trial as u64, n_elements)),
                            FaultSource::Fixed(f) => Some((*f).clone()),
                        };
                        let (fe_override, delta_db, lost, truncated) = match &trial_faults {
                            None => (None, 0.0, false, false),
                            Some(f) => trial_impairment(scenario, fe, f, trial as u64),
                        };
                        let fe_trial = fe_override.as_ref().unwrap_or(fe);
                        let (mut errors, mut pkt_err, snr) = if lost {
                            // The reply never aired (blackout / dropout): the
                            // reader's detector integrates pure noise — half
                            // the bits wrong, packet gone.
                            let base = LinkBudget::compute_with_front_end(scenario, fe_trial);
                            (cfg.bits_per_trial / 2, true, base.ebn0_db + delta_db)
                        } else {
                            match cfg.engine {
                                TrialEngine::LinkBudget => link_budget_trial(
                                    scenario,
                                    fe_trial,
                                    cfg.bits_per_trial,
                                    &mut rng,
                                    delta_db,
                                ),
                                TrialEngine::SampleLevel => run_sample_trial_via(
                                    scenario,
                                    fe_trial,
                                    cfg.bits_per_trial,
                                    10f64.powf(delta_db / 20.0),
                                    *source,
                                    &mut rng,
                                ),
                            }
                        };
                        if lost {
                            vab_obs::event!("sim.montecarlo", "reply_lost", trial = trial as u64);
                            vab_obs::metrics::inc("mc.lost_replies", 1);
                        }
                        if truncated {
                            // Brown-out mid-reply: the packet tail never airs,
                            // so the CRC fails and the lost tail reads as noise.
                            errors += cfg.bits_per_trial / 4;
                            pkt_err = true;
                            vab_obs::event!(
                                "sim.montecarlo",
                                "brownout_truncated_reply",
                                trial = trial as u64,
                            );
                            vab_obs::metrics::inc("mc.brownout_truncations", 1);
                        }
                        let errors = errors.min(cfg.bits_per_trial);
                        ber.record(errors, cfg.bits_per_trial);
                        trial_bers.push(errors as f64 / cfg.bits_per_trial as f64);
                        if pkt_err {
                            packet_errors += 1;
                        }
                        ebn0.push(snr);
                    }
                    PointResult { ber, packet_errors, trials: (hi - lo) as u64, ebn0, trial_bers }
                }),
            ));
        }
        for (shard, h) in handles {
            shards.push(h.join().map_err(|payload| MonteCarloError::WorkerPanicked {
                shard,
                message: panic_message(payload.as_ref()),
            }));
        }
    });
    let mut total = PointResult {
        ber: BerCounter::new(),
        packet_errors: 0,
        trials: 0,
        ebn0: RunningStats::new(),
        trial_bers: Vec::with_capacity(cfg.trials),
    };
    for s in shards {
        let s = s?;
        total.ber.merge(&s.ber);
        total.packet_errors += s.packet_errors;
        total.trials += s.trials;
        total.ebn0.merge(&s.ebn0);
        total.trial_bers.extend_from_slice(&s.trial_bers);
    }
    // Keep trial order deterministic regardless of shard join order.
    total.trial_bers.sort_by(|a, b| a.partial_cmp(b).expect("finite BER"));
    vab_obs::event!(
        "sim.montecarlo",
        "point_done",
        trials = total.trials,
        bit_errors = total.ber.errors(),
        packet_errors = total.packet_errors,
        threads = threads,
    );
    vab_obs::metrics::inc("mc.trials", total.trials);
    vab_obs::metrics::inc("mc.packet_errors", total.packet_errors);
    Ok(total)
}

/// Sweeps an axis: `points` are `(x, scenario)` pairs.
pub fn run_ber_sweep(points: &[(f64, Scenario)], cfg: &MonteCarloConfig) -> Vec<BerPoint> {
    points.iter().map(|(x, s)| run_point(s, cfg).to_point(*x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::SystemKind;
    use vab_util::units::Meters;

    fn cfg(trials: usize, bits: usize) -> MonteCarloConfig {
        MonteCarloConfig {
            trials,
            bits_per_trial: bits,
            seed: 7,
            engine: TrialEngine::LinkBudget,
            threads: 0,
        }
    }

    #[test]
    fn close_range_is_error_free() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(20.0));
        let r = run_point(&s, &cfg(20, 256));
        assert_eq!(r.ber.errors(), 0, "BER at 20 m should be zero");
        assert_eq!(r.per(), 0.0);
    }

    #[test]
    fn absurd_range_is_coin_flip() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(10_000.0));
        let r = run_point(&s, &cfg(10, 256));
        assert!(r.ber.ber() > 0.3, "BER at 10 km should approach 0.5, got {}", r.ber.ber());
    }

    #[test]
    fn ber_grows_with_range() {
        // PAB fading is bursty, so compare well-separated ranges with
        // plenty of trials.
        let ber_at = |d: f64| {
            let s = Scenario::river(SystemKind::Pab, Meters(d));
            run_point(&s, &cfg(80, 256)).ber.ber()
        };
        let near = ber_at(15.0);
        let far = ber_at(150.0);
        assert!(near + 0.1 < far, "near {near} far {far}");
    }

    #[test]
    fn reproducible_across_thread_counts() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(280.0));
        let mut c1 = cfg(16, 128);
        c1.threads = 1;
        let mut c4 = cfg(16, 128);
        c4.threads = 4;
        let r1 = run_point(&s, &c1);
        let r4 = run_point(&s, &c4);
        assert_eq!(r1.ber.errors(), r4.ber.errors());
        assert_eq!(r1.ber.bits(), r4.ber.bits());
        assert_eq!(r1.packet_errors, r4.packet_errors);
    }

    #[test]
    fn coding_beats_uncoded_at_marginal_snr() {
        // Identical physics (same system, same channel realizations via the
        // same seed); only the link stack differs.
        let coded = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(340.0));
        let uncoded = coded.clone().with_link(vab_link::frame::LinkConfig::uncoded());
        let rc = run_point(&coded, &cfg(60, 512));
        let ru = run_point(&uncoded, &cfg(60, 512));
        assert!(ru.ber.ber() > 5e-3, "uncoded must show errors at 340 m, got {}", ru.ber.ber());
        assert!(
            rc.ber.ber() < ru.ber.ber() / 3.0,
            "coded {} should clearly beat uncoded {}",
            rc.ber.ber(),
            ru.ber.ber()
        );
    }

    #[test]
    fn off_fault_plan_matches_unfaulted_bit_for_bit() {
        use vab_fault::{FaultConfig, FaultPlan};
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(280.0));
        let c = cfg(24, 128);
        let plain = run_point(&s, &c);
        let plan = FaultPlan::new(c.seed, FaultConfig::off());
        let faulted = run_point_faulted(&s, &c, &plan);
        assert_eq!(plain.ber.errors(), faulted.ber.errors());
        assert_eq!(plain.packet_errors, faulted.packet_errors);
        assert_eq!(plain.trial_bers, faulted.trial_bers);
    }

    #[test]
    fn severe_faults_degrade_the_point() {
        use vab_fault::{FaultConfig, FaultPlan};
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(200.0));
        let c = cfg(60, 256);
        let nominal = run_point(&s, &c);
        let plan = FaultPlan::new(c.seed, FaultConfig::severe());
        let faulted = run_point_faulted(&s, &c, &plan);
        assert!(
            faulted.ber.ber() > nominal.ber.ber(),
            "severe faults must raise BER: {} vs {}",
            faulted.ber.ber(),
            nominal.ber.ber()
        );
        assert!(faulted.packet_errors > nominal.packet_errors);
    }

    #[test]
    fn faulted_point_reproducible_across_thread_counts() {
        use vab_fault::{FaultConfig, FaultPlan};
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(280.0));
        let plan = FaultPlan::new(9, FaultConfig::with_intensity(0.5));
        let mut c1 = cfg(16, 128);
        c1.threads = 1;
        let mut c8 = cfg(16, 128);
        c8.threads = 8;
        let r1 = run_point_faulted(&s, &c1, &plan);
        let r8 = run_point_faulted(&s, &c8, &plan);
        assert_eq!(r1.ber.errors(), r8.ber.errors());
        assert_eq!(r1.packet_errors, r8.packet_errors);
        assert_eq!(r1.trial_bers, r8.trial_bers);
    }

    #[test]
    fn panic_message_recovers_str_string_and_marks_other_payloads() {
        let p: Box<dyn std::any::Any + Send> = Box::new("literal message");
        assert_eq!(panic_message(p.as_ref()), "literal message");
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("formatted message"));
        assert_eq!(panic_message(p.as_ref()), "formatted message");
        let p: Box<dyn std::any::Any + Send> = Box::new(42i32);
        let msg = panic_message(p.as_ref());
        assert!(msg.contains("non-string panic payload"), "msg: {msg}");
        assert!(msg.contains("TypeId"), "payload type must be identified: {msg}");
        // Distinct payload types must yield distinct messages.
        let q: Box<dyn std::any::Any + Send> = Box::new(1.5f64);
        assert_ne!(panic_message(q.as_ref()), msg);
    }

    #[test]
    fn try_variant_returns_ok_on_clean_runs() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(50.0));
        let fe = s.front_end();
        let r = try_run_point_with_front_end(&s, &fe, &cfg(4, 64)).expect("no worker panic");
        assert_eq!(r.trials, 4);
    }

    #[test]
    fn sweep_produces_ordered_points() {
        let points: Vec<(f64, Scenario)> = [50.0, 150.0]
            .iter()
            .map(|&d| (d, Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(d))))
            .collect();
        let out = run_ber_sweep(&points, &cfg(5, 64));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].x, 50.0);
        assert_eq!(out[1].x, 150.0);
        assert!(out[0].ebn0_db > out[1].ebn0_db);
    }
}
