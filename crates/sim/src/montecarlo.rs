//! Seeded, parallel Monte Carlo over channel realizations.
//!
//! Each trial draws a fresh multipath/Doppler realization (the analogue of
//! one field trial among the paper's 1,500), runs payload bits through the
//! selected engine, and accumulates exact error counts. Trials shard across
//! threads with crossbeam; every shard derives its RNG stream from the
//! master seed, so results are bit-reproducible regardless of thread count.

use crate::baseline::FrontEnd;
use crate::linkbudget::LinkBudget;
use crate::metrics::BerPoint;
use crate::samplelevel::run_sample_trial;
use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::RngExt;
use vab_acoustics::channel::ChannelModel;
use vab_phy::ber::{ber_noncoherent_orthogonal, BerCounter};
use vab_util::rng::{derive_seed, random_bits, seeded};
use vab_util::stats::RunningStats;

/// Which simulation fidelity runs each trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialEngine {
    /// Sonar equation + closed-form channel-bit error probability + real
    /// link-layer codecs. Fast.
    LinkBudget,
    /// Full complex-baseband DSP through the multipath channel. Slow.
    SampleLevel,
}

/// Monte Carlo configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Independent channel realizations.
    pub trials: usize,
    /// Information bits per trial (one "packet").
    pub bits_per_trial: usize,
    /// Master seed.
    pub seed: u64,
    /// Simulation fidelity.
    pub engine: TrialEngine,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
}

impl MonteCarloConfig {
    /// A sensible default: 100 trials × 256 bits, link-budget engine.
    pub fn fast(seed: u64) -> Self {
        Self { trials: 100, bits_per_trial: 256, seed, engine: TrialEngine::LinkBudget, threads: 0 }
    }

    /// Sample-level validation config (fewer trials — it is ~1000× slower).
    pub fn sample_level(seed: u64) -> Self {
        Self { trials: 10, bits_per_trial: 128, seed, engine: TrialEngine::SampleLevel, threads: 0 }
    }
}

/// Aggregated result of one operating point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Exact bit-error bookkeeping (aggregate over all trials).
    pub ber: BerCounter,
    /// Packets with ≥ 1 residual error.
    pub packet_errors: u64,
    /// Trials run.
    pub trials: u64,
    /// Per-trial effective Eb/N0 statistics (dB, fading included).
    pub ebn0: RunningStats,
    /// Per-trial BER values, one per channel realization ("deployment").
    pub trial_bers: Vec<f64>,
}

impl PointResult {
    /// Median per-deployment BER — the statistic a field campaign actually
    /// reports: each trial is one deployment geometry, and the published
    /// "range at BER 10⁻³" reflects the *typical* deployment, with fade
    /// outliers visible as scatter rather than pulling the mean.
    pub fn median_ber(&self) -> f64 {
        if self.trial_bers.is_empty() {
            0.0
        } else {
            vab_util::stats::median(&self.trial_bers)
        }
    }

    /// Packet error rate.
    pub fn per(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.packet_errors as f64 / self.trials as f64
        }
    }

    /// Converts to a plot point at sweep coordinate `x`.
    pub fn to_point(&self, x: f64) -> BerPoint {
        BerPoint {
            x,
            ber: self.ber.ber(),
            per: self.per(),
            ebn0_db: self.ebn0.mean(),
            bits: self.ber.bits(),
            trials: self.trials,
        }
    }
}

/// Round-trip multipath factor for one channel realization, in dB of
/// received *power* relative to the direct-path-only budget.
///
/// The two architectures interact with multipath in fundamentally different
/// ways — this is one of the paper's quiet advantages:
///
/// * **Retrodirective (VAB)**: a Van Atta array phase-conjugates whatever
///   wavefront hits it, so *each multipath component retraces its own path*
///   and the round-trip contributions add with aligned phase — a **power
///   sum** `Σ|aᵢ|²` (the time-reversal property). Multipath never fades the
///   link; it mildly helps. A small conjugation-efficiency factor accounts
///   for the finite aperture and element pattern at bounce angles.
/// * **Point scatterer (PAB) / conventional array**: down- and uplink each
///   see the coherent sum `Σ aᵢ·e^{jθᵢ}`; reciprocity squares it, so the
///   received power goes as `|H|⁴` — deep, bursty fades.
///
/// Bounce-path phases get a per-trial random component (platform sway of a
/// centimetre re-rolls them at 18.5 kHz).
fn fading_delta_db(scenario: &Scenario, rng: &mut StdRng) -> f64 {
    let ch = ChannelModel::new(
        scenario.env.clone(),
        scenario.reader_pos,
        scenario.node_pos,
        scenario.carrier(),
    );
    let arrivals = ch.arrivals(rng);
    if arrivals.is_empty() {
        return 0.0;
    }
    let direct = arrivals
        .iter()
        .find(|a| a.is_direct())
        .map(|a| a.gain.abs())
        .unwrap_or_else(|| arrivals[0].gain.abs());
    if direct <= 0.0 {
        return 0.0;
    }
    match scenario.system {
        crate::baseline::SystemKind::Vab { .. } => {
            // Power sum over retraced paths; bounce paths conjugate with
            // ~60 % amplitude efficiency (finite aperture, element pattern
            // at the bounce elevation angles).
            const CONJ_EFF: f64 = 0.6;
            let total: f64 = arrivals
                .iter()
                .map(|a| {
                    let eff = if a.is_direct() { 1.0 } else { CONJ_EFF };
                    (eff * a.gain.abs()).powi(2)
                })
                .sum();
            10.0 * (total / (direct * direct)).log10()
        }
        _ => {
            let h: vab_util::complex::C64 = arrivals
                .iter()
                .map(|a| {
                    let phase = if a.is_direct() {
                        0.0
                    } else {
                        rng.random::<f64>() * vab_util::TAU
                    };
                    a.gain
                        * vab_util::complex::C64::cis(
                            -vab_util::TAU * scenario.carrier().value() * a.delay_s + phase,
                        )
                })
                .sum();
            // The narrowband null cannot be arbitrarily deep across the
            // whole signal band: chips occupy ~4× the bit rate, so paths
            // separated by more than a chip period decorrelate and leave a
            // frequency-diversity floor on the flat-fade depth.
            let ratio = (h.abs() / direct).max(0.35);
            // Amplitude ratio each way → ratio² round-trip amplitude →
            // ratio⁴ in power.
            40.0 * ratio.log10()
        }
    }
}

/// One link-budget-engine trial: returns (bit errors, packet error, Eb/N0 dB).
fn link_budget_trial(
    scenario: &Scenario,
    fe: &FrontEnd,
    bits_per_trial: usize,
    rng: &mut StdRng,
) -> (usize, bool, f64) {
    let base = LinkBudget::compute_with_front_end(scenario, fe);
    let ebn0_db = base.ebn0_db + fading_delta_db(scenario, rng);
    let ebn0_lin = 10f64.powf(ebn0_db / 10.0);
    let link = scenario.link_config();
    // Energy per *channel* bit is the info-bit energy × code rate.
    let ecn0 = ebn0_lin * link.fec.rate();
    let p_chan = ber_noncoherent_orthogonal(ecn0);
    // Real codecs, synthetic channel: flip channel bits i.i.d.
    let info = random_bits(rng, bits_per_trial);
    let mut coded = {
        let mut b = info.clone();
        if link.whitening {
            b = vab_link::whiten::whiten(&b);
        }
        b = link.fec.encode(&b);
        if let Some(il) = &link.interleaver {
            b = il.interleave(&b);
        }
        b
    };
    let decoded = if link.fec == vab_link::fec::Fec::Conv {
        // The reader decodes convolutional codes with *soft* Viterbi. Model
        // the per-channel-bit soft metric as a unit signal in Gaussian
        // noise whose sigma reproduces the raw error probability p_chan.
        let sigma = if p_chan >= 0.5 {
            1e6
        } else {
            1.0 / vab_util::special::q_inv(p_chan.max(1e-12))
        };
        let mut soft: Vec<f64> = coded
            .iter()
            .map(|&b| {
                let s = if b { 1.0 } else { -1.0 };
                s + sigma * vab_util::rng::gaussian(rng)
            })
            .collect();
        if let Some(il) = &link.interleaver {
            let block = il.block_len();
            soft.truncate(soft.len() / block * block);
            soft = il.deinterleave_soft(&soft);
        }
        let mut b = vab_link::fec::conv_decode_soft(&soft);
        if link.whitening {
            b = vab_link::whiten::whiten(&b);
        }
        b
    } else {
        for bit in coded.iter_mut() {
            if rng.random::<f64>() < p_chan {
                *bit = !*bit;
            }
        }
        let mut b = coded;
        if let Some(il) = &link.interleaver {
            let block = il.block_len();
            b.truncate(b.len() / block * block);
            b = il.deinterleave(&b);
        }
        b = link.fec.decode(&b);
        if link.whitening {
            b = vab_link::whiten::whiten(&b);
        }
        b
    };
    let errors = info
        .iter()
        .zip(decoded.iter().chain(std::iter::repeat(&false)))
        .filter(|(a, b)| a != b)
        .count();
    (errors, errors > 0, ebn0_db)
}

/// Runs all trials for one operating point.
pub fn run_point(scenario: &Scenario, cfg: &MonteCarloConfig) -> PointResult {
    let fe = scenario.front_end();
    run_point_with_front_end(scenario, &fe, cfg)
}

/// Like [`run_point`] but with an externally-built front end (ablations
/// pass modified arrays — failed elements, mismatched lines, custom states).
pub fn run_point_with_front_end(
    scenario: &Scenario,
    fe: &FrontEnd,
    cfg: &MonteCarloConfig,
) -> PointResult {
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.threads
    }
    .min(cfg.trials.max(1));
    let trials_per = cfg.trials.div_ceil(threads);
    let mut shards: Vec<PointResult> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let fe = &fe;
            let scenario = &scenario;
            let lo = t * trials_per;
            let hi = ((t + 1) * trials_per).min(cfg.trials);
            if lo >= hi {
                continue;
            }
            handles.push(scope.spawn(move |_| {
                let mut ber = BerCounter::new();
                let mut packet_errors = 0u64;
                let mut ebn0 = RunningStats::new();
                let mut trial_bers = Vec::with_capacity(hi - lo);
                for trial in lo..hi {
                    let mut rng = seeded(derive_seed(cfg.seed, trial as u64));
                    let (errors, pkt_err, snr) = match cfg.engine {
                        TrialEngine::LinkBudget => {
                            link_budget_trial(scenario, fe, cfg.bits_per_trial, &mut rng)
                        }
                        TrialEngine::SampleLevel => {
                            run_sample_trial(scenario, fe, cfg.bits_per_trial, &mut rng)
                        }
                    };
                    let errors = errors.min(cfg.bits_per_trial);
                    ber.record(errors, cfg.bits_per_trial);
                    trial_bers.push(errors as f64 / cfg.bits_per_trial as f64);
                    if pkt_err {
                        packet_errors += 1;
                    }
                    ebn0.push(snr);
                }
                PointResult { ber, packet_errors, trials: (hi - lo) as u64, ebn0, trial_bers }
            }));
        }
        for h in handles {
            shards.push(h.join().expect("Monte Carlo worker panicked"));
        }
    })
    .expect("crossbeam scope");
    let mut total = PointResult {
        ber: BerCounter::new(),
        packet_errors: 0,
        trials: 0,
        ebn0: RunningStats::new(),
        trial_bers: Vec::with_capacity(cfg.trials),
    };
    for s in shards {
        total.ber.merge(&s.ber);
        total.packet_errors += s.packet_errors;
        total.trials += s.trials;
        total.ebn0.merge(&s.ebn0);
        total.trial_bers.extend_from_slice(&s.trial_bers);
    }
    // Keep trial order deterministic regardless of shard join order.
    total.trial_bers.sort_by(|a, b| a.partial_cmp(b).expect("finite BER"));
    total
}

/// Sweeps an axis: `points` are `(x, scenario)` pairs.
pub fn run_ber_sweep(points: &[(f64, Scenario)], cfg: &MonteCarloConfig) -> Vec<BerPoint> {
    points
        .iter()
        .map(|(x, s)| run_point(s, cfg).to_point(*x))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::SystemKind;
    use vab_util::units::Meters;

    fn cfg(trials: usize, bits: usize) -> MonteCarloConfig {
        MonteCarloConfig {
            trials,
            bits_per_trial: bits,
            seed: 7,
            engine: TrialEngine::LinkBudget,
            threads: 0,
        }
    }

    #[test]
    fn close_range_is_error_free() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(20.0));
        let r = run_point(&s, &cfg(20, 256));
        assert_eq!(r.ber.errors(), 0, "BER at 20 m should be zero");
        assert_eq!(r.per(), 0.0);
    }

    #[test]
    fn absurd_range_is_coin_flip() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(10_000.0));
        let r = run_point(&s, &cfg(10, 256));
        assert!(r.ber.ber() > 0.3, "BER at 10 km should approach 0.5, got {}", r.ber.ber());
    }

    #[test]
    fn ber_grows_with_range() {
        // PAB fading is bursty, so compare well-separated ranges with
        // plenty of trials.
        let ber_at = |d: f64| {
            let s = Scenario::river(SystemKind::Pab, Meters(d));
            run_point(&s, &cfg(80, 256)).ber.ber()
        };
        let near = ber_at(15.0);
        let far = ber_at(150.0);
        assert!(near + 0.1 < far, "near {near} far {far}");
    }

    #[test]
    fn reproducible_across_thread_counts() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(280.0));
        let mut c1 = cfg(16, 128);
        c1.threads = 1;
        let mut c4 = cfg(16, 128);
        c4.threads = 4;
        let r1 = run_point(&s, &c1);
        let r4 = run_point(&s, &c4);
        assert_eq!(r1.ber.errors(), r4.ber.errors());
        assert_eq!(r1.ber.bits(), r4.ber.bits());
        assert_eq!(r1.packet_errors, r4.packet_errors);
    }

    #[test]
    fn coding_beats_uncoded_at_marginal_snr() {
        // Identical physics (same system, same channel realizations via the
        // same seed); only the link stack differs.
        let coded = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(340.0));
        let uncoded = coded.clone().with_link(vab_link::frame::LinkConfig::uncoded());
        let rc = run_point(&coded, &cfg(60, 512));
        let ru = run_point(&uncoded, &cfg(60, 512));
        assert!(
            ru.ber.ber() > 5e-3,
            "uncoded must show errors at 340 m, got {}",
            ru.ber.ber()
        );
        assert!(
            rc.ber.ber() < ru.ber.ber() / 3.0,
            "coded {} should clearly beat uncoded {}",
            rc.ber.ber(),
            ru.ber.ber()
        );
    }

    #[test]
    fn sweep_produces_ordered_points() {
        let points: Vec<(f64, Scenario)> = [50.0, 150.0]
            .iter()
            .map(|&d| (d, Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(d))))
            .collect();
        let out = run_ber_sweep(&points, &cfg(5, 64));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].x, 50.0);
        assert_eq!(out[1].x, 150.0);
        assert!(out[0].ebn0_db > out[1].ebn0_db);
    }
}
