//! The channel seam: synthetic generation vs bank replay behind one trait.
//!
//! Every sample-level trial needs two propagation operators — the one-way
//! baseband channel (down- or uplink of a point-scatterer system) and the
//! Van Atta retrodirective *round trip* (a diagonal channel, not the
//! one-way response squared). [`ChannelSource`] is where a trial gets
//! them: [`SyntheticSource`] realizes a fresh image-method channel from
//! the trial RNG exactly as the engine always has, while [`BankSource`]
//! replays a recorded TVIR bank (`vab-replay`) starting at a random
//! offset into its snapshot timeline. Experiments thread a
//! `&dyn ChannelSource` through [`crate::montecarlo::run_point_with_source`]
//! and the rest of the DSP stack cannot tell the difference.

use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::RngExt;
use vab_acoustics::channel::{retro_round_trip, ImpulseResponse};
use vab_replay::{ReplayChannel, TvirBank};
use vab_util::complex::C64;

/// One trial's realized channel: both propagation operators, ready to
/// apply to complex-baseband envelopes. Both variants return the full
/// convolution (input length plus the channel's delay spread), the
/// synthetic `apply_baseband` convention.
#[derive(Debug, Clone)]
pub enum RealizedChannel {
    /// A freshly drawn image-method realization.
    Synthetic {
        /// One-way impulse response (reciprocal: reused both directions).
        ir: ImpulseResponse,
        /// Lazily built retrodirective round-trip response.
        retro: Option<ImpulseResponse>,
    },
    /// Replay of a recorded TVIR bank. Boxed: a `ReplayChannel` owns its
    /// FFT plan and scratch, which would otherwise dwarf the synthetic
    /// variant.
    Replayed {
        /// One-way replay convolver.
        one_way: Box<ReplayChannel>,
        /// Van Atta round-trip replay convolver.
        round_trip: Box<ReplayChannel>,
    },
}

impl RealizedChannel {
    /// Applies the one-way channel (full convolution).
    pub fn apply_one_way(&mut self, x: &[C64]) -> Vec<C64> {
        match self {
            RealizedChannel::Synthetic { ir, .. } => ir.apply_baseband(x),
            RealizedChannel::Replayed { one_way, .. } => one_way.apply(x),
        }
    }

    /// Applies the Van Atta round-trip channel (each arrival retraces its
    /// own path: real positive power taps at doubled delays); full
    /// convolution.
    pub fn apply_round_trip(&mut self, x: &[C64]) -> Vec<C64> {
        match self {
            RealizedChannel::Synthetic { ir, retro } => {
                let retro = retro.get_or_insert_with(|| {
                    ImpulseResponse::from_arrivals(
                        retro_round_trip(ir.arrivals(), ir.carrier()),
                        ir.sample_rate(),
                        ir.carrier(),
                    )
                });
                retro.apply_baseband(x)
            }
            RealizedChannel::Replayed { round_trip, .. } => round_trip.apply(x),
        }
    }
}

/// Where a sample-level trial's channel comes from. `Sync` because Monte
/// Carlo shards share one source across worker threads.
pub trait ChannelSource: Sync {
    /// Realizes the channel for one trial at baseband rate `fs`, drawing
    /// any randomness (path realization, replay start offset) from the
    /// trial RNG so results stay bit-reproducible across thread counts.
    fn realize(&self, scenario: &Scenario, fs: f64, rng: &mut StdRng) -> RealizedChannel;
}

/// The default source: a fresh image-method + surface-motion realization
/// per trial, identical to the engine's historical behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntheticSource;

impl ChannelSource for SyntheticSource {
    fn realize(&self, scenario: &Scenario, fs: f64, rng: &mut StdRng) -> RealizedChannel {
        let ch = vab_acoustics::channel::ChannelModel::new(
            scenario.env.clone(),
            scenario.reader_pos,
            scenario.node_pos,
            scenario.carrier(),
        );
        RealizedChannel::Synthetic { ir: ch.impulse_response(fs, rng), retro: None }
    }
}

/// Replays one recorded bank: every trial draws a uniform start offset
/// into the bank's snapshot span from the trial RNG, so trials sample
/// different stretches of the same recorded channel — the replay analogue
/// of "many packets through one deployment".
#[derive(Debug, Clone)]
pub struct BankSource {
    bank: TvirBank,
}

impl BankSource {
    /// Wraps a bank for replay.
    pub fn new(bank: TvirBank) -> Self {
        Self { bank }
    }

    /// The wrapped bank.
    pub fn bank(&self) -> &TvirBank {
        &self.bank
    }
}

impl ChannelSource for BankSource {
    fn realize(&self, _scenario: &Scenario, fs: f64, rng: &mut StdRng) -> RealizedChannel {
        assert!(
            (fs - self.bank.spec.fs).abs() < 1e-6,
            "trial baseband rate {fs} does not match bank rate {}",
            self.bank.spec.fs
        );
        let span = self.bank.spec.span_s;
        let t0 = if self.bank.spec.n_snapshots > 1 && span > 0.0 {
            rng.random::<f64>() * span
        } else {
            0.0
        };
        RealizedChannel::Replayed {
            one_way: Box::new(self.bank.one_way_channel(t0)),
            round_trip: Box::new(self.bank.round_trip_channel(t0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::SystemKind;
    use vab_replay::{BankSpec, WaterSpec};
    use vab_util::rng::seeded;
    use vab_util::units::Meters;

    fn test_wave(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| C64::cis(i as f64 * 0.17).scale(1.0 + 0.2 * (i as f64 * 0.05).cos()))
            .collect()
    }

    #[test]
    fn synthetic_source_is_deterministic_per_seed() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(80.0));
        let fs = s.mod_params.baseband_fs();
        let x = test_wave(600);
        let src = SyntheticSource;
        let mut a = src.realize(&s, fs, &mut seeded(5));
        let mut b = src.realize(&s, fs, &mut seeded(5));
        assert_eq!(a.apply_round_trip(&x), b.apply_round_trip(&x));
        assert_eq!(a.apply_one_way(&x), b.apply_one_way(&x));
    }

    #[test]
    fn replayed_round_trip_matches_synthetic_on_a_calm_static_bank() {
        // A single-snapshot calm-ocean bank replays the *same* seeded
        // channel realization the synthetic source draws, and a mirror-calm
        // surface means no path moves — outputs must agree to FFT rounding
        // once past the filter's settle-in region (the direct
        // `apply_baseband` drops each arrival's fractional pre-onset
        // sample, the tap convolution keeps it).
        use vab_acoustics::environment::SeaState;
        let seed = 314;
        let s = Scenario::ocean(SystemKind::Vab { n_pairs: 4 }, Meters(60.0), SeaState::Calm);
        let fs = s.mod_params.baseband_fs();
        let spec = BankSpec {
            water: WaterSpec::Ocean { sea_state: 0 },
            range_m: 60.0,
            carrier_hz: s.carrier().value(),
            fs,
            n_snapshots: 1,
            span_s: 0.0,
            seed,
        };
        let bank = vab_replay::generate(&spec).unwrap();
        let n_taps = bank.round_trip[0].len();
        let x = test_wave(n_taps + 900);
        let mut replayed = BankSource::new(bank).realize(&s, fs, &mut seeded(seed));
        let mut synthetic = SyntheticSource.realize(&s, fs, &mut seeded(seed));
        let yr = replayed.apply_round_trip(&x);
        let ys = synthetic.apply_round_trip(&x);
        // Length conventions differ by a trailing zero-padding sample; the
        // populated region is identical.
        assert!(yr.len() >= x.len() && ys.len() >= x.len());
        let scale = ys.iter().map(|v| v.abs()).fold(0.0f64, f64::max).max(1e-300);
        for i in n_taps..x.len() {
            assert!(
                (yr[i] - ys[i]).abs() < 1e-9 * scale,
                "replay diverges from synthetic at {i}: {:?} vs {:?}",
                yr[i],
                ys[i]
            );
        }
    }

    #[test]
    fn bank_replay_is_bit_reproducible_per_trial_seed() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 2 }, Meters(40.0));
        let fs = s.mod_params.baseband_fs();
        let spec = BankSpec {
            water: WaterSpec::River,
            range_m: 40.0,
            carrier_hz: s.carrier().value(),
            fs,
            n_snapshots: 3,
            span_s: 2.0,
            seed: 77,
        };
        let src = BankSource::new(vab_replay::generate(&spec).unwrap());
        let x = test_wave(500);
        let mut a = src.realize(&s, fs, &mut seeded(9));
        let mut b = src.realize(&s, fs, &mut seeded(9));
        assert_eq!(a.apply_round_trip(&x), b.apply_round_trip(&x));
        // A different trial seed starts elsewhere in the bank timeline.
        let mut c = src.realize(&s, fs, &mut seeded(10));
        assert_ne!(a.apply_round_trip(&x), c.apply_round_trip(&x));
    }

    #[test]
    #[should_panic(expected = "does not match bank rate")]
    fn bank_replay_refuses_a_mismatched_sample_rate() {
        let spec = BankSpec {
            water: WaterSpec::River,
            range_m: 40.0,
            carrier_hz: 18_500.0,
            fs: 1600.0,
            n_snapshots: 1,
            span_s: 0.0,
            seed: 1,
        };
        let src = BankSource::new(vab_replay::generate(&spec).unwrap());
        let s = Scenario::river(SystemKind::Vab { n_pairs: 2 }, Meters(40.0));
        src.realize(&s, 999.0, &mut seeded(0));
    }
}
