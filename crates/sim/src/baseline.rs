//! The systems under comparison.
//!
//! Head-to-head fairness demands one simulator with pluggable node front
//! ends: the same environment, reader, and demodulator evaluate
//!
//! * **VAB** — the Van Atta array with electro-mechanically co-designed
//!   modulation states and coded link;
//! * **PAB** — the prior state of the art (Piezo-Acoustic Backscatter,
//!   SIGCOMM 2019): one transducer, harvest-first load switching, uncoded;
//! * **Conventional array** — same aperture as VAB but individually
//!   terminated elements (no retrodirective pair swap): the orientation
//!   strawman.

use vab_core::array::{conventional_backscatter_factor, VanAttaArray};
use vab_link::frame::LinkConfig;
use vab_piezo::reflection::{gamma, gamma_to_load, Load, ModulationStates};
use vab_piezo::transduction::Transducer;
use vab_util::units::{Db, Degrees, Hertz, Watts};

/// Which node architecture is deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Van Atta Acoustic Backscatter with `n_pairs` transducer pairs.
    Vab {
        /// Number of Van Atta pairs (2 elements each).
        n_pairs: usize,
    },
    /// The single-transducer prior state of the art.
    Pab,
    /// VAB's aperture without the pair swap (orientation baseline).
    ConventionalArray {
        /// Total element count (even).
        n_elements: usize,
    },
}

impl SystemKind {
    /// Display label for tables.
    pub fn label(&self) -> String {
        match self {
            SystemKind::Vab { n_pairs } => format!("VAB ({n_pairs} pairs)"),
            SystemKind::Pab => "PAB (single element)".to_string(),
            SystemKind::ConventionalArray { n_elements } => {
                format!("conventional array ({n_elements} el.)")
            }
        }
    }

    /// The link configuration each system shipped with: VAB's stack is
    /// coded and interleaved; PAB and the conventional strawman ran uncoded.
    pub fn link_config(&self) -> LinkConfig {
        match self {
            SystemKind::Vab { .. } => LinkConfig::vab_default(),
            _ => LinkConfig::uncoded(),
        }
    }

    /// Number of energy-collecting elements.
    pub fn n_elements(&self) -> usize {
        match self {
            SystemKind::Vab { n_pairs } => 2 * n_pairs,
            SystemKind::Pab => 1,
            SystemKind::ConventionalArray { n_elements } => *n_elements,
        }
    }
}

/// A fully-instantiated node front end the simulator can query.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    kind: SystemKind,
    /// Only present for the Van Atta variants.
    array: Option<VanAttaArray>,
    transducer: Transducer,
    f0: Hertz,
    pab_depth: f64,
    pab_harvest: f64,
}

impl FrontEnd {
    /// Builds the front end for `kind` at carrier `f0`.
    pub fn new(kind: SystemKind, f0: Hertz) -> Self {
        let transducer = Transducer::vab_default();
        let array = match kind {
            SystemKind::Vab { n_pairs } => Some(VanAttaArray::vab_default(n_pairs, f0)),
            _ => None,
        };
        // PAB's harvest-first design: the node harvests in *both* switch
        // states (its transformer-coupled rectifier stays in circuit), so
        // the "reflect" state only reaches |Γ| ≈ 0.7 and the absorb state
        // is a full match — modulation depth ≈ 0.35. This is precisely the
        // energy-vs-communication compromise VAB's co-design removes.
        let g_open = gamma(&transducer.bvd, Load::Open, f0);
        let g_reflect = vab_util::complex::C64::from_polar(0.7, g_open.arg());
        let pab_states = ModulationStates {
            reflect: Load::Custom(gamma_to_load(&transducer.bvd, g_reflect, f0)),
            absorb: Load::ConjugateMatch,
        };
        let pab_depth = pab_states.modulation_depth(&transducer.bvd, f0);
        let pab_harvest = pab_states.harvest_fraction(&transducer.bvd, f0);
        Self { kind, array, transducer, f0, pab_depth, pab_harvest }
    }

    /// Builds a VAB front end with a custom array (ablations).
    pub fn from_array(array: VanAttaArray, f0: Hertz) -> Self {
        let transducer = array.transducer;
        Self {
            kind: SystemKind::Vab { n_pairs: array.geometry.n_pairs() },
            array: Some(array),
            transducer,
            f0,
            pab_depth: 0.0,
            pab_harvest: 0.0,
        }
    }

    /// System variant.
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// Direct access to the Van Atta array (ablation experiments).
    pub fn array(&self) -> Option<&VanAttaArray> {
        self.array.as_ref()
    }

    /// The transducer model shared by all variants.
    pub fn bvd(&self) -> &vab_piezo::bvd::Bvd {
        &self.transducer.bvd
    }

    /// Modulation depth |ΔΓ|/2 of this front end's switching states
    /// (through the switch for the array variants).
    pub fn modulation_depth(&self) -> f64 {
        match (&self.kind, &self.array) {
            (SystemKind::Vab { .. }, Some(a)) => a.modulation_depth(self.f0),
            (SystemKind::Pab, _) => self.pab_depth,
            (SystemKind::ConventionalArray { .. }, _) => {
                // The conventional strawman keeps VAB's co-designed states.
                ModulationStates::vab(&self.transducer.bvd, self.f0)
                    .modulation_depth(&self.transducer.bvd, self.f0)
            }
            (SystemKind::Vab { .. }, None) => unreachable!("VAB always has an array"),
        }
    }

    /// Backscatter array/pattern gain at incidence θ (amplitude relative to
    /// one ideal element, element pattern included; 1.0 for PAB broadside).
    pub fn array_gain(&self, theta: Degrees) -> f64 {
        let pat = theta.radians().cos().max(0.0).powf(0.35);
        match (&self.kind, &self.array) {
            (SystemKind::Vab { .. }, Some(a)) => a.retro_gain(theta, self.f0),
            (SystemKind::Pab, _) => pat * pat,
            (SystemKind::ConventionalArray { n_elements }, _) => {
                let g =
                    vab_core::array::ArrayGeometry::half_wavelength(*n_elements, self.f0, 1480.0);
                conventional_backscatter_factor(&g, theta, self.f0).abs() * pat * pat
            }
            (SystemKind::Vab { .. }, None) => unreachable!("VAB always has an array"),
        }
    }

    /// Backscattered **modulated amplitude** per unit incident amplitude at
    /// incidence angle θ — modulation depth × array factor. This is the
    /// quantity that enters the round-trip link budget (in dB as
    /// `20·log10`).
    pub fn modulated_amplitude(&self, theta: Degrees) -> f64 {
        self.modulation_depth() * self.array_gain(theta)
    }

    /// Modulated amplitude in dB (can be negative for weak states).
    pub fn modulated_gain_db(&self, theta: Degrees) -> f64 {
        20.0 * self.modulated_amplitude(theta).max(1e-12).log10()
    }

    /// Harvesting power available from an incident level at the node.
    pub fn harvest_power(&self, incident_db_upa: Db) -> Watts {
        match (&self.kind, &self.array) {
            (SystemKind::Vab { .. }, Some(a)) => a.harvest_power(self.f0, incident_db_upa),
            (SystemKind::Pab, _) => {
                Watts(self.transducer.available_power(self.f0, incident_db_upa) * self.pab_harvest)
            }
            (SystemKind::ConventionalArray { n_elements }, _) => {
                // Elements all harvest in the absorb state (like VAB).
                let states = ModulationStates::vab(&self.transducer.bvd, self.f0);
                let frac = states.harvest_fraction(&self.transducer.bvd, self.f0);
                Watts(
                    self.transducer.available_power(self.f0, incident_db_upa)
                        * *n_elements as f64
                        * frac,
                )
            }
            (SystemKind::Vab { .. }, None) => unreachable!(),
        }
    }

    /// Mean (static) reflection coefficient — the un-modulated clutter the
    /// reader must cancel. Used by the sample-level simulator.
    pub fn static_gamma(&self) -> vab_util::complex::C64 {
        let states = match (&self.kind, &self.array) {
            (SystemKind::Vab { .. }, Some(a)) => a.states,
            (SystemKind::Pab, _) => {
                let g_open = gamma(&self.transducer.bvd, Load::Open, self.f0);
                let g_reflect = vab_util::complex::C64::from_polar(0.7, g_open.arg());
                ModulationStates {
                    reflect: Load::Custom(gamma_to_load(&self.transducer.bvd, g_reflect, self.f0)),
                    absorb: Load::ConjugateMatch,
                }
            }
            _ => ModulationStates::vab(&self.transducer.bvd, self.f0),
        };
        let gr = gamma(&self.transducer.bvd, states.reflect, self.f0);
        let ga = gamma(&self.transducer.bvd, states.absorb, self.f0);
        (gr + ga) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_util::approx_eq;

    const F0: Hertz = Hertz(18_500.0);

    #[test]
    fn vab_outguns_pab_at_broadside() {
        let vab = FrontEnd::new(SystemKind::Vab { n_pairs: 4 }, F0);
        let pab = FrontEnd::new(SystemKind::Pab, F0);
        let delta = vab.modulated_gain_db(Degrees(0.0)) - pab.modulated_gain_db(Degrees(0.0));
        // Array (18 dB) + depth advantage (~4–5 dB) ≈ 22–23 dB.
        assert!(delta > 18.0 && delta < 28.0, "Δ = {delta} dB");
    }

    #[test]
    fn vab_holds_gain_across_angles_conventional_does_not() {
        let vab = FrontEnd::new(SystemKind::Vab { n_pairs: 4 }, F0);
        let conv = FrontEnd::new(SystemKind::ConventionalArray { n_elements: 8 }, F0);
        let vab_drop = vab.modulated_gain_db(Degrees(0.0)) - vab.modulated_gain_db(Degrees(45.0));
        let conv_drop =
            conv.modulated_gain_db(Degrees(0.0)) - conv.modulated_gain_db(Degrees(45.0));
        assert!(vab_drop < 4.0, "VAB should be nearly flat, dropped {vab_drop} dB");
        assert!(conv_drop > 10.0, "conventional should collapse, dropped {conv_drop} dB");
    }

    #[test]
    fn pab_depth_is_the_harvest_first_compromise() {
        let pab = FrontEnd::new(SystemKind::Pab, F0);
        // |Γ_reflect|/2 = 0.35 — the always-harvesting design's depth.
        let depth = pab.modulated_amplitude(Degrees(0.0));
        assert!(depth > 0.3 && depth < 0.4, "PAB depth {depth}");
        // And it harvests meaningfully in *both* states.
        let fe_bvd = pab.bvd();
        let _ = fe_bvd; // depth assertion above is the contract
    }

    #[test]
    fn harvest_scales_with_aperture() {
        let vab = FrontEnd::new(SystemKind::Vab { n_pairs: 4 }, F0);
        let pab = FrontEnd::new(SystemKind::Pab, F0);
        let pv = vab.harvest_power(Db(150.0)).value();
        let pp = pab.harvest_power(Db(150.0)).value();
        // 8 elements at half the harvest fraction ≈ 4× PAB's single
        // full-harvest element.
        assert!(approx_eq(pv / pp, 4.0, 0.2), "ratio {}", pv / pp);
    }

    #[test]
    fn link_configs_match_the_systems() {
        assert_eq!(SystemKind::Vab { n_pairs: 4 }.link_config().fec, vab_link::fec::Fec::Conv);
        assert_eq!(SystemKind::Pab.link_config().fec, vab_link::fec::Fec::None);
        assert!(SystemKind::Pab.link_config().interleaver.is_none());
    }

    #[test]
    fn labels_are_informative() {
        assert!(SystemKind::Vab { n_pairs: 4 }.label().contains("4 pairs"));
        assert!(SystemKind::Pab.label().contains("PAB"));
    }

    #[test]
    fn static_gamma_finite_and_bounded() {
        for kind in [
            SystemKind::Vab { n_pairs: 2 },
            SystemKind::Pab,
            SystemKind::ConventionalArray { n_elements: 4 },
        ] {
            let fe = FrontEnd::new(kind, F0);
            let g = fe.static_gamma();
            assert!(g.is_finite());
            assert!(g.abs() <= 1.0 + 1e-9, "{kind:?}: |Γ̄| = {}", g.abs());
        }
    }
}
