//! Field-campaign simulation: the "1,500 real-world trials" aggregate.
//!
//! The paper's evaluation is a campaign of individually-deployed trials —
//! different days, ranges, depths, orientations, sea states. This module
//! randomizes deployments the same way, runs one packet per deployment,
//! and produces both a per-trial log (the raw scatter a paper plots) and
//! bucketed summaries.

use crate::baseline::SystemKind;
use crate::montecarlo::{run_point, run_point_with_trial_faults, MonteCarloConfig, TrialEngine};
use crate::scenario::Scenario;
use rand::{Rng, RngExt};
use vab_acoustics::environment::SeaState;
use vab_fault::{FaultConfig, FaultPlan};
use vab_util::rng::{derive_seed, seeded};
use vab_util::units::{Degrees, Meters};

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of deployments (the paper ran 1,500+).
    pub n_trials: usize,
    /// Information bits per deployment's packet.
    pub bits_per_trial: usize,
    /// Fraction of deployments in the river (the rest are ocean).
    pub river_fraction: f64,
    /// Minimum deployment range, metres (log-uniform sampling).
    pub min_range_m: f64,
    /// Maximum deployment range, metres (log-uniform sampling).
    pub max_range_m: f64,
    /// Maximum |rotation| of the node, degrees (uniform sampling).
    pub max_rotation_deg: f64,
    /// The deployed system.
    pub system: SystemKind,
    /// Master seed.
    pub seed: u64,
    /// Optional fault injection: when set, each deployment draws its
    /// faults deterministically from a [`FaultPlan`] keyed on the campaign
    /// seed (deployment `i` always experiences the same faults regardless
    /// of thread count or which other trials run).
    pub faults: Option<FaultConfig>,
}

impl CampaignConfig {
    /// The reproduction's standard campaign: 1,500 VAB deployments,
    /// 10–450 m, ±60°, 70 % river.
    pub fn vab_default() -> Self {
        Self {
            n_trials: 1500,
            bits_per_trial: 256,
            river_fraction: 0.7,
            min_range_m: 10.0,
            max_range_m: 450.0,
            max_rotation_deg: 60.0,
            system: SystemKind::Vab { n_pairs: 4 },
            seed: 1500,
            faults: None,
        }
    }
}

/// One deployment's outcome.
#[derive(Debug, Clone, Copy)]
pub struct TrialRecord {
    /// Trial index.
    pub id: usize,
    /// True for river, false for ocean.
    pub river: bool,
    /// Sea state index (0 = calm … 4 = moderate).
    pub sea_state: u8,
    /// Reader–node range, m.
    pub range_m: f64,
    /// Node rotation, degrees.
    pub rotation_deg: f64,
    /// Effective Eb/N0 of the trial, dB.
    pub ebn0_db: f64,
    /// Bit errors in the packet.
    pub errors: usize,
    /// Packet bits.
    pub bits: usize,
}

impl TrialRecord {
    /// Trial BER.
    pub fn ber(&self) -> f64 {
        self.errors as f64 / self.bits.max(1) as f64
    }

    /// The paper's per-trial success criterion.
    pub fn success(&self) -> bool {
        self.ber() <= 1e-3
    }
}

/// Campaign result: the raw log plus summary accessors.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every deployment, in trial order.
    pub records: Vec<TrialRecord>,
}

impl CampaignReport {
    /// Overall packet-success fraction.
    pub fn success_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.success()).count() as f64 / self.records.len() as f64
    }

    /// Success fraction within a range bucket `[lo, hi)` metres.
    pub fn success_in_range(&self, lo: f64, hi: f64) -> (usize, f64) {
        let bucket: Vec<&TrialRecord> =
            self.records.iter().filter(|r| r.range_m >= lo && r.range_m < hi).collect();
        if bucket.is_empty() {
            return (0, 0.0);
        }
        let ok = bucket.iter().filter(|r| r.success()).count();
        (bucket.len(), ok as f64 / bucket.len() as f64)
    }

    /// The farthest *successful* deployment.
    pub fn max_successful_range(&self) -> f64 {
        self.records.iter().filter(|r| r.success()).map(|r| r.range_m).fold(0.0, f64::max)
    }
}

fn sample_scenario<R: Rng + ?Sized>(cfg: &CampaignConfig, rng: &mut R) -> (Scenario, bool, u8) {
    let river = rng.random::<f64>() < cfg.river_fraction;
    let log_lo = cfg.min_range_m.ln();
    let log_hi = cfg.max_range_m.ln();
    let range = (log_lo + rng.random::<f64>() * (log_hi - log_lo)).exp();
    let rotation = (rng.random::<f64>() * 2.0 - 1.0) * cfg.max_rotation_deg;
    let (scenario, ss) = if river {
        (Scenario::river(cfg.system, Meters(range)), 1u8)
    } else {
        let states = SeaState::all();
        let idx = rng.random_range(0..states.len());
        (Scenario::ocean(cfg.system, Meters(range), states[idx]), idx as u8)
    };
    (scenario.with_rotation(Degrees(rotation)), river, ss)
}

/// Runs the campaign (parallel inside each trial is unnecessary — trials
/// are cheap; the loop itself could be sharded, but 1,500 link-budget
/// trials complete in seconds single-threaded and stay bit-reproducible).
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let _span = vab_obs::Span::enter("sim.campaign", "run_campaign");
    vab_obs::event!(
        "sim.campaign",
        "campaign_start",
        n_trials = cfg.n_trials,
        seed = cfg.seed,
        faulted = cfg.faults.is_some(),
    );
    let report = CampaignReport { records: run_campaign_slice(cfg, 0, cfg.n_trials) };
    vab_obs::metrics::inc("campaign.deployments", report.records.len() as u64);
    if vab_obs::enabled() {
        vab_obs::metrics::gauge("campaign.success_fraction").set(report.success_fraction());
        vab_obs::metrics::gauge("campaign.max_successful_range_m")
            .set(report.max_successful_range());
    }
    report
}

/// Runs deployments `lo..hi` of the campaign and returns their records.
///
/// Every deployment seeds itself from `derive_seed(cfg.seed, id)` and
/// (when faulted) indexes the fault plan by its own id, so a slice is
/// bit-identical to the same ids inside a full [`run_campaign`] — the
/// property `vab-svc` relies on to shard a campaign into independent,
/// individually-cacheable jobs. `hi` is clamped to `cfg.n_trials`.
pub fn run_campaign_slice(cfg: &CampaignConfig, lo: usize, hi: usize) -> Vec<TrialRecord> {
    let hi = hi.min(cfg.n_trials);
    let plan = cfg.faults.map(|fc| FaultPlan::new(cfg.seed, fc));
    let mut records = Vec::with_capacity(hi.saturating_sub(lo));
    for id in lo..hi {
        let mut rng = seeded(derive_seed(cfg.seed, id as u64));
        let (scenario, river, sea_state) = sample_scenario(cfg, &mut rng);
        let mc = MonteCarloConfig {
            trials: 1,
            bits_per_trial: cfg.bits_per_trial,
            seed: derive_seed(cfg.seed, (id as u64) << 1 | 1),
            engine: TrialEngine::LinkBudget,
            threads: 1,
        };
        let point = match &plan {
            None => run_point(&scenario, &mc),
            Some(p) => {
                // Deployment `id` indexes the plan, so its faults do not
                // depend on how many deployments ran before it.
                let faults = p.trial_faults(id as u64, cfg.system.n_elements());
                let fe = scenario.front_end();
                run_point_with_trial_faults(&scenario, &fe, &mc, &faults)
            }
        };
        let record = TrialRecord {
            id,
            river,
            sea_state,
            range_m: scenario.range().value(),
            rotation_deg: scenario.incidence_angle().value(),
            ebn0_db: point.ebn0.mean(),
            errors: (point.ber.errors()) as usize,
            bits: point.ber.bits() as usize,
        };
        vab_obs::event!(
            "sim.campaign",
            "deployment_done",
            trial = id,
            river = river,
            range_m = record.range_m,
            ebn0_db = record.ebn0_db,
            errors = record.errors,
            success = record.success(),
        );
        records.push(record);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignConfig {
        CampaignConfig { n_trials: 120, ..CampaignConfig::vab_default() }
    }

    #[test]
    fn slices_concatenate_to_the_full_campaign() {
        let cfg = CampaignConfig { n_trials: 40, ..CampaignConfig::vab_default() };
        let full = run_campaign(&cfg);
        let mut stitched = run_campaign_slice(&cfg, 0, 15);
        stitched.extend(run_campaign_slice(&cfg, 15, 40));
        assert_eq!(stitched.len(), full.records.len());
        for (a, b) in stitched.iter().zip(&full.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.errors, b.errors);
            assert_eq!(a.range_m.to_bits(), b.range_m.to_bits());
            assert_eq!(a.ebn0_db.to_bits(), b.ebn0_db.to_bits());
        }
        // Out-of-range slices clamp instead of panicking.
        assert!(run_campaign_slice(&cfg, 40, 50).is_empty());
    }

    #[test]
    fn campaign_runs_and_logs_every_trial() {
        let report = run_campaign(&small());
        assert_eq!(report.records.len(), 120);
        for r in &report.records {
            assert!(r.range_m >= 10.0 && r.range_m <= 450.0);
            assert!(r.rotation_deg.abs() <= 60.0);
            assert_eq!(r.bits, 256);
        }
    }

    #[test]
    fn near_deployments_succeed_far_ones_struggle() {
        let report = run_campaign(&small());
        let (n_near, near) = report.success_in_range(10.0, 80.0);
        let (n_far, far) = report.success_in_range(350.0, 450.0);
        assert!(n_near > 5 && n_far > 3, "buckets too thin: {n_near}/{n_far}");
        assert!(near > 0.9, "near success {near}");
        assert!(far < near, "far {far} should be below near {near}");
    }

    #[test]
    fn vab_campaign_reaches_past_300m() {
        let report = run_campaign(&small());
        assert!(
            report.max_successful_range() > 300.0,
            "max successful range {}",
            report.max_successful_range()
        );
    }

    #[test]
    fn pab_campaign_is_short_range() {
        let cfg = CampaignConfig {
            system: SystemKind::Pab,
            n_trials: 150,
            ..CampaignConfig::vab_default()
        };
        let report = run_campaign(&cfg);
        assert!(
            report.max_successful_range() < 120.0,
            "PAB reached {} m",
            report.max_successful_range()
        );
    }

    #[test]
    fn campaign_is_reproducible() {
        let a = run_campaign(&small());
        let b = run_campaign(&small());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.errors, y.errors);
            assert_eq!(x.range_m, y.range_m);
        }
    }

    #[test]
    fn faulted_campaign_underperforms_the_clean_one() {
        let clean = run_campaign(&small());
        let faulted = run_campaign(&CampaignConfig {
            faults: Some(FaultConfig::with_intensity(0.6)),
            ..small()
        });
        assert!(
            faulted.success_fraction() < clean.success_fraction(),
            "faults must cost deployments: {} vs {}",
            faulted.success_fraction(),
            clean.success_fraction()
        );
    }

    #[test]
    fn faulted_campaign_is_reproducible() {
        let cfg = CampaignConfig { faults: Some(FaultConfig::with_intensity(0.4)), ..small() };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.errors, y.errors);
            assert_eq!(x.range_m, y.range_m);
        }
    }

    #[test]
    fn mixes_both_environments() {
        let report = run_campaign(&small());
        let rivers = report.records.iter().filter(|r| r.river).count();
        assert!(rivers > 60 && rivers < 110, "river count {rivers}");
    }
}
