//! The sonar-equation fast path.
//!
//! For a backscatter round trip the received *modulated* level is
//!
//! ```text
//! RL = SL − TL(d) − TL(d) + 20·log10(modulation_depth × array_factor) + fade
//! ```
//!
//! and the noise the demodulator actually fights is the **larger** of the
//! ambient sea noise and the reader's own residual self-interference: the
//! projector's direct arrival sits 40–80 dB above the signal, and after
//! cancellation its fluctuation sidebands (platform motion, clutter) leave
//! a noise floor `SL + si_floor_rel_db` (dBc) that usually dominates — this
//! is the term that makes backscatter range so much shorter than one-way
//! communication range, and the term the Van Atta gain buys back.

use crate::baseline::FrontEnd;
use crate::scenario::Scenario;
use vab_util::db::power_db_sum;
use vab_util::units::{Db, Hertz, Meters};

/// Reader hardware parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReaderParams {
    /// Projector source level, dB re 1 µPa @ 1 m.
    pub source_level_db: f64,
    /// Residual self-interference noise floor relative to the source level,
    /// dBc/Hz after cancellation (combines projector–hydrophone coupling,
    /// carrier cancellation depth, and clutter fluctuation).
    pub si_floor_rel_db: f64,
}

impl ReaderParams {
    /// The reproduction's reader: 180 dB source (≈ 100 V drive on the
    /// default transducer), −80 dBc/Hz residual self-interference.
    pub fn vab_default() -> Self {
        Self { source_level_db: 180.0, si_floor_rel_db: -80.0 }
    }

    /// Effective self-interference noise PSD at the receiver,
    /// dB re 1 µPa²/Hz.
    pub fn si_floor_psd(&self) -> Db {
        Db(self.source_level_db + self.si_floor_rel_db)
    }
}

/// All the terms of one link-budget evaluation.
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    /// Projector source level, dB re µPa @ 1 m.
    pub source_level_db: f64,
    /// One-way transmission loss, dB.
    pub tl_one_way_db: f64,
    /// Incident level at the node, dB re µPa.
    pub incident_at_node_db: f64,
    /// 20·log10(modulation depth × array factor), dB.
    pub modulated_gain_db: f64,
    /// Received modulated-signal level at the hydrophone, dB re µPa.
    pub received_level_db: f64,
    /// Ambient-noise PSD, dB re µPa²/Hz.
    pub ambient_psd_db: f64,
    /// Self-interference floor PSD, dB re µPa²/Hz.
    pub si_psd_db: f64,
    /// Total effective noise PSD, dB re µPa²/Hz.
    pub noise_psd_db: f64,
    /// Information bit rate, bits/s.
    pub bit_rate: f64,
    /// Eb/N0 per *information* bit, dB (before any fading).
    pub ebn0_db: f64,
}

impl LinkBudget {
    /// Evaluates the budget for a scenario (static terms only; per-trial
    /// fading is applied by the Monte Carlo engine on top).
    pub fn compute(scenario: &Scenario) -> LinkBudget {
        let fe = scenario.front_end();
        Self::compute_with_front_end(scenario, &fe)
    }

    /// Budget with an externally-built front end (ablations pass modified
    /// arrays).
    pub fn compute_with_front_end(scenario: &Scenario, fe: &FrontEnd) -> LinkBudget {
        let f = scenario.carrier();
        let d = scenario.range();
        let sl = scenario.reader.source_level_db;
        let tl = scenario.env.transmission_loss(f, d).value();
        let incident = sl - tl;
        let gain = fe.modulated_gain_db(scenario.incidence_angle());
        let rl = sl - 2.0 * tl + gain;
        let ambient = scenario.env.noise_psd(f).value();
        let si = scenario.reader.si_floor_psd().value();
        let noise = power_db_sum([ambient, si]);
        let bit_rate = scenario.mod_params.bit_rate;
        let ebn0 = rl - noise - 10.0 * bit_rate.log10();
        LinkBudget {
            source_level_db: sl,
            tl_one_way_db: tl,
            incident_at_node_db: incident,
            modulated_gain_db: gain,
            received_level_db: rl,
            ambient_psd_db: ambient,
            si_psd_db: si,
            noise_psd_db: noise,
            bit_rate,
            ebn0_db: ebn0,
        }
    }

    /// Eb/N0 in linear units.
    pub fn ebn0_lin(&self) -> f64 {
        10f64.powf(self.ebn0_db / 10.0)
    }

    /// Uncoded channel BER predicted by noncoherent-orthogonal theory.
    pub fn uncoded_ber(&self) -> f64 {
        vab_phy::ber::ber_noncoherent_orthogonal(self.ebn0_lin())
    }

    /// The named rows of the budget, for Table T3.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("source level (dB re µPa @1m)", self.source_level_db),
            ("one-way TL (dB)", self.tl_one_way_db),
            ("incident at node (dB re µPa)", self.incident_at_node_db),
            ("modulated gain: depth × array (dB)", self.modulated_gain_db),
            ("received modulated level (dB re µPa)", self.received_level_db),
            ("ambient noise PSD (dB re µPa²/Hz)", self.ambient_psd_db),
            ("self-interference PSD (dB re µPa²/Hz)", self.si_psd_db),
            ("effective noise PSD (dB re µPa²/Hz)", self.noise_psd_db),
            ("bit rate (bps)", self.bit_rate),
            ("Eb/N0 (dB)", self.ebn0_db),
        ]
    }
}

/// Finds the maximum range (bisection, metres) at which `predicate(budget)`
/// still holds — e.g. "Eb/N0 above the BER-10⁻³ requirement".
pub fn max_range_where<F>(scenario_at: impl Fn(Meters) -> Scenario, predicate: F) -> Meters
where
    F: Fn(&LinkBudget) -> bool,
{
    let (mut lo, mut hi) = (1.0f64, 20_000.0f64);
    if !predicate(&LinkBudget::compute(&scenario_at(Meters(lo)))) {
        return Meters(0.0);
    }
    if predicate(&LinkBudget::compute(&scenario_at(Meters(hi)))) {
        return Meters(hi);
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if predicate(&LinkBudget::compute(&scenario_at(Meters(mid)))) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Meters(0.5 * (lo + hi))
}

/// Harvested power at the node for a scenario (no fading).
pub fn harvest_at(scenario: &Scenario) -> vab_util::units::Watts {
    let fe = scenario.front_end();
    let budget = LinkBudget::compute_with_front_end(scenario, &fe);
    fe.harvest_power(Db(budget.incident_at_node_db))
}

/// Convenience: the carrier used across the reproduction.
pub const VAB_CARRIER: Hertz = Hertz(18_500.0);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::SystemKind;
    use vab_phy::ber::required_ebn0_db;
    use vab_util::approx_eq;

    fn vab_at(d: f64) -> Scenario {
        Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(d))
    }

    fn pab_at(d: f64) -> Scenario {
        Scenario::river(SystemKind::Pab, Meters(d))
    }

    #[test]
    fn budget_terms_consistent() {
        let b = LinkBudget::compute(&vab_at(100.0));
        assert!(approx_eq(
            b.received_level_db,
            b.source_level_db - 2.0 * b.tl_one_way_db + b.modulated_gain_db,
            1e-9
        ));
        assert!(approx_eq(b.incident_at_node_db, b.source_level_db - b.tl_one_way_db, 1e-9));
    }

    #[test]
    fn self_interference_dominates_ambient() {
        let b = LinkBudget::compute(&vab_at(100.0));
        assert!(b.si_psd_db > b.ambient_psd_db + 20.0);
        assert!(approx_eq(b.noise_psd_db, b.si_psd_db, 0.01));
    }

    #[test]
    fn ebn0_healthy_at_300m_for_vab() {
        // The headline: at 300 m / 100 bps VAB sits a few dB above the
        // uncoded requirement — coding closes the rest.
        let b = LinkBudget::compute(&vab_at(300.0));
        assert!(b.ebn0_db > 5.0 && b.ebn0_db < 12.0, "Eb/N0 = {} dB", b.ebn0_db);
    }

    #[test]
    fn pab_is_short_range() {
        let need = required_ebn0_db(1e-3);
        let r = max_range_where(|d: Meters| pab_at(d.value()), |b| b.ebn0_db >= need);
        assert!(r.value() > 10.0 && r.value() < 60.0, "PAB range {r}");
    }

    #[test]
    fn vab_beats_pab_by_order_of_magnitude_uncoded() {
        let need = required_ebn0_db(1e-3);
        let r_vab = max_range_where(|d: Meters| vab_at(d.value()), |b| b.ebn0_db >= need);
        let r_pab = max_range_where(|d: Meters| pab_at(d.value()), |b| b.ebn0_db >= need);
        let ratio = r_vab.value() / r_pab.value();
        // Uncoded-vs-uncoded isolates the physical-layer gain: ≈ 22.5 dB
        // round trip → ≈ 10× at the shallow-water spreading slope. VAB's
        // coding (counted in the Monte Carlo comparison) lifts it to ~15×.
        assert!(ratio > 6.0 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn ebn0_monotonically_decreasing_with_range() {
        let mut prev = f64::INFINITY;
        for d in [10.0, 30.0, 100.0, 300.0, 1000.0] {
            let b = LinkBudget::compute(&vab_at(d));
            assert!(b.ebn0_db < prev);
            prev = b.ebn0_db;
        }
    }

    #[test]
    fn higher_bit_rate_costs_ebn0_db_for_db() {
        let b100 = LinkBudget::compute(&vab_at(200.0));
        let b1000 = LinkBudget::compute(&vab_at(200.0).with_bit_rate(1000.0));
        assert!(approx_eq(b100.ebn0_db - b1000.ebn0_db, -10.0 * (100.0f64 / 1000.0).log10(), 1e-9));
    }

    #[test]
    fn rotation_hurts_pab_little_and_conventional_a_lot() {
        let conv = |d: f64, rot: f64| {
            LinkBudget::compute(
                &Scenario::river(SystemKind::ConventionalArray { n_elements: 8 }, Meters(d))
                    .with_rotation(vab_util::units::Degrees(rot)),
            )
            .ebn0_db
        };
        let vab = |d: f64, rot: f64| {
            LinkBudget::compute(&vab_at(d).with_rotation(vab_util::units::Degrees(rot))).ebn0_db
        };
        assert!(vab(100.0, 0.0) - vab(100.0, 45.0) < 4.0);
        assert!(conv(100.0, 0.0) - conv(100.0, 45.0) > 10.0);
    }

    #[test]
    fn max_range_bisection_edges() {
        // A predicate that always fails → 0; always passes → cap.
        assert_eq!(max_range_where(|d: Meters| vab_at(d.value()), |_| false).value(), 0.0);
        assert_eq!(max_range_where(|d: Meters| vab_at(d.value()), |_| true).value(), 20_000.0);
    }

    #[test]
    fn harvest_declines_with_range() {
        let near = harvest_at(&vab_at(10.0)).value();
        let far = harvest_at(&vab_at(200.0)).value();
        assert!(near > far * 10.0, "near {near} far {far}");
    }

    #[test]
    fn budget_rows_complete() {
        let rows = LinkBudget::compute(&vab_at(100.0)).rows();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|(_, v)| v.is_finite()));
    }
}
