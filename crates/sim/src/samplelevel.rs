//! Sample-level (waveform) simulation of one backscatter round trip.
//!
//! The honest path: complex-baseband envelopes through the image-method
//! channel in both directions, the node's actual Γ switching, carrier leak,
//! additive noise at the effective noise PSD, then the real synchronizer,
//! demodulator and link decoder. Used to validate the link-budget engine
//! and to exercise the full DSP stack in integration tests.

use crate::baseline::FrontEnd;
use crate::chansource::{ChannelSource, SyntheticSource};
use crate::linkbudget::LinkBudget;
use crate::scenario::Scenario;
use rand::rngs::StdRng;
use vab_phy::carrier::remove_dc_sliding;
use vab_phy::demod::{count_bit_errors, Demodulator};
use vab_phy::modulation::BackscatterModulator;
use vab_phy::sync::Preamble;
use vab_util::complex::C64;
use vab_util::rng::{complex_gaussian, random_bits};

/// A synchronized, demodulated uplink: both decision domains for the
/// link-layer decoders.
#[derive(Debug, Clone)]
pub struct TransportedUplink {
    /// Hard channel-bit decisions (length = transmitted channel bits).
    pub hard_bits: Vec<bool>,
    /// Per-bit soft statistics (positive ⇒ 1), same length.
    pub soft_bits: Vec<f64>,
}

/// Transports `channel_bits` from the node to the reader at the waveform
/// level: preamble prepend → FM0 switch waveform → (retro) multipath round
/// trip → carrier leak + noise → carrier strip → acquisition → per-bit
/// demodulation. Returns `None` when the synchronizer never locks.
pub fn transport_uplink(
    scenario: &Scenario,
    fe: &FrontEnd,
    channel_bits: &[bool],
    rng: &mut StdRng,
) -> Option<TransportedUplink> {
    transport_uplink_scaled(scenario, fe, channel_bits, 1.0, rng)
}

/// Like [`transport_uplink`] but with the *modulated* reflection amplitude
/// scaled by `amp_scale` — the waveform-level fault-injection hook.
/// Resonance drift across the array, bubble-cloud attenuation and
/// impulsive-burst penalties all reach the receiver as a weaker modulation
/// sideband against an unchanged noise floor, which is exactly what this
/// models (the static clutter and carrier leak are left untouched).
pub fn transport_uplink_scaled(
    scenario: &Scenario,
    fe: &FrontEnd,
    channel_bits: &[bool],
    amp_scale: f64,
    rng: &mut StdRng,
) -> Option<TransportedUplink> {
    transport_uplink_via(scenario, fe, channel_bits, amp_scale, &SyntheticSource, rng)
}

/// Like [`transport_uplink_scaled`] but with the channel supplied by an
/// arbitrary [`ChannelSource`] — the seam that lets the same DSP stack run
/// on a freshly synthesized channel or a replayed TVIR bank.
pub fn transport_uplink_via(
    scenario: &Scenario,
    fe: &FrontEnd,
    channel_bits: &[bool],
    amp_scale: f64,
    source: &dyn ChannelSource,
    rng: &mut StdRng,
) -> Option<TransportedUplink> {
    let params = scenario.mod_params;
    let fs = params.baseband_fs();
    let budget = LinkBudget::compute_with_front_end(scenario, fe);

    // --- Channel (reciprocal: one realization reused both ways).
    let mut realized = {
        let _t = vab_obs::time_stage("sim.channel_realization");
        source.realize(scenario, fs, rng)
    };

    // --- Node bit stream: preamble + coded payload.
    let preamble = Preamble::barker13();
    let mut tx_bits = preamble.bits().to_vec();
    tx_bits.extend_from_slice(channel_bits);

    // --- Incident field at the node (reader transmits CW).
    let source_amp = 10f64.powf(scenario.reader.source_level_db / 20.0);
    let modulator = BackscatterModulator::new(params);
    let chips = modulator.switch_waveform(&tx_bits);
    // The node waits for the field to establish before modulating.
    let direct_delay = scenario.range().value() / scenario.env.sound_speed();
    let lead = (direct_delay * fs).ceil() as usize + 64;
    let total = lead + chips.len() + 64;

    // --- Node reflection envelope (before the return trip).
    let mod_amp = fe.modulated_amplitude(scenario.incidence_angle()) * amp_scale.max(0.0);
    let array_gain = fe.array_gain(scenario.incidence_angle());
    // The un-modulated mean reflection also re-radiates with the array's
    // gain; it ends up as a DC-like clutter the receiver cancels.
    let clutter = fe.static_gamma() * array_gain;
    let gamma_at = |i: usize| -> C64 {
        let chip = if i >= lead && i - lead < chips.len() {
            chips[i - lead]
        } else {
            -1.0 // absorb state outside the packet
        };
        clutter + C64::real(chip * mod_amp)
    };

    // --- Round trip through the water.
    //
    // Retrodirective node (VAB): each arrival retraces its own path with
    // conjugated phase, so the round trip is a single *diagonal* channel
    // with real positive taps eta*|a_i|^2 at delays 2*tau_i (the
    // time-reversal property). Convolving the channel twice would instead
    // create cross-path terms (down path i, up path j) that a real Van
    // Atta scatters away from the reader - so we must not do that.
    //
    // Point-scatterer systems (PAB / conventional): the node multiplies the
    // *total* incident field and the uplink is a genuine second traversal
    // of the same channel.
    let transport_timer = vab_obs::time_stage("sim.waveform_transport");
    let uplink = match scenario.system {
        crate::baseline::SystemKind::Vab { .. } => {
            // The node modulates the carrier envelope directly; each path's
            // component carries the modulation back along itself (the
            // diagonal round-trip channel — see `retro_round_trip`).
            let node_signal: Vec<C64> = (0..total).map(|i| gamma_at(i) * source_amp).collect();
            realized.apply_round_trip(&node_signal)
        }
        _ => {
            let tx_envelope = vec![C64::real(source_amp); total];
            let incident = realized.apply_one_way(&tx_envelope);
            let reflected: Vec<C64> =
                incident.iter().enumerate().map(|(i, &x)| x * gamma_at(i)).collect();
            realized.apply_one_way(&reflected)
        }
    };
    let noise_sigma = (10f64.powf(budget.noise_psd_db / 10.0) * fs).sqrt();
    // Residual un-cancelled carrier: −50 dB of the direct coupling.
    let leak = C64::from_polar(source_amp * 10f64.powf(-50.0 / 20.0), 0.3);
    let rx: Vec<C64> =
        uplink.iter().map(|&v| v + leak + complex_gaussian(rng, noise_sigma)).collect();
    drop(transport_timer);

    // --- Receiver: carrier strip → sync → per-bit demod.
    let _demod_timer = vab_obs::time_stage("sim.demod");
    let cleaned = remove_dc_sliding(&rx, params.samples_per_bit() * 32);
    let (payload_start, _) = preamble.locate(&cleaned, &params, 2.5)?;
    let demod = Demodulator::new(params).without_dc_removal();
    let hard = demod.demodulate(&cleaned, payload_start, channel_bits.len());
    let mut soft = demod.soft_bits(&cleaned, payload_start, channel_bits.len());
    // Normalize so metric magnitudes are O(1) for soft decoders.
    let rms =
        (soft.iter().map(|m| m * m).sum::<f64>() / soft.len().max(1) as f64).sqrt().max(1e-300);
    for m in soft.iter_mut() {
        *m /= rms;
    }
    Some(TransportedUplink { hard_bits: hard, soft_bits: soft })
}

/// Decodes a transported uplink's channel bits back to information bits
/// using the link configuration (soft Viterbi for the convolutional code,
/// hard decoding otherwise).
pub fn decode_uplink(link: &vab_link::frame::LinkConfig, up: &TransportedUplink) -> Vec<bool> {
    if link.fec == vab_link::fec::Fec::Conv {
        let mut soft = up.soft_bits.clone();
        // Impulsive-noise limiting: a snapping-shrimp transient produces a
        // huge (confidently wrong) metric that would dominate the Viterbi
        // path metric. Clip every metric to a few times the *median*
        // magnitude — medians ignore the snaps that inflate an RMS.
        let mut mags: Vec<f64> = soft.iter().map(|m| m.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let med = mags.get(mags.len() / 2).copied().unwrap_or(1.0).max(1e-300);
        let limit = 3.0 * med;
        for m in soft.iter_mut() {
            *m = m.clamp(-limit, limit);
        }
        if let Some(il) = &link.interleaver {
            let block = il.block_len();
            soft.truncate(soft.len() / block * block);
            soft = il.deinterleave_soft(&soft);
        }
        let mut b = vab_link::fec::conv_decode_soft(&soft);
        if link.whitening {
            b = vab_link::whiten::whiten(&b);
        }
        b
    } else {
        let mut b = up.hard_bits.clone();
        if let Some(il) = &link.interleaver {
            let block = il.block_len();
            b.truncate(b.len() / block * block);
            b = il.deinterleave(&b);
        }
        b = link.fec.decode(&b);
        if link.whitening {
            b = vab_link::whiten::whiten(&b);
        }
        b
    }
}

/// Runs one full waveform trial with random payload bits.
///
/// Returns `(info_bit_errors, packet_error, ebn0_db)` where the Eb/N0 is
/// the static link-budget value for reporting (the waveform itself carries
/// the actual fading).
pub fn run_sample_trial(
    scenario: &Scenario,
    fe: &FrontEnd,
    n_info_bits: usize,
    rng: &mut StdRng,
) -> (usize, bool, f64) {
    run_sample_trial_scaled(scenario, fe, n_info_bits, 1.0, rng)
}

/// [`run_sample_trial`] with the modulated amplitude scaled by `amp_scale`
/// (see [`transport_uplink_scaled`]) — the fault-injected waveform trial.
pub fn run_sample_trial_scaled(
    scenario: &Scenario,
    fe: &FrontEnd,
    n_info_bits: usize,
    amp_scale: f64,
    rng: &mut StdRng,
) -> (usize, bool, f64) {
    run_sample_trial_via(scenario, fe, n_info_bits, amp_scale, &SyntheticSource, rng)
}

/// [`run_sample_trial_scaled`] over an arbitrary [`ChannelSource`]: the
/// full waveform trial (encode → transport → decode) with the channel
/// either synthesized per trial or replayed from a TVIR bank.
pub fn run_sample_trial_via(
    scenario: &Scenario,
    fe: &FrontEnd,
    n_info_bits: usize,
    amp_scale: f64,
    source: &dyn ChannelSource,
    rng: &mut StdRng,
) -> (usize, bool, f64) {
    let budget = LinkBudget::compute_with_front_end(scenario, fe);
    let link = scenario.link_config();
    let info = random_bits(rng, n_info_bits);
    let channel_bits = {
        let mut b = info.clone();
        if link.whitening {
            b = vab_link::whiten::whiten(&b);
        }
        b = link.fec.encode(&b);
        if let Some(il) = &link.interleaver {
            b = il.interleave(&b);
        }
        b
    };
    let Some(up) = transport_uplink_via(scenario, fe, &channel_bits, amp_scale, source, rng) else {
        return (n_info_bits, true, budget.ebn0_db); // sync lost: whole packet gone
    };
    let mut decoded = decode_uplink(&link, &up);
    decoded.truncate(n_info_bits);
    let errors = count_bit_errors(&info, &decoded);
    (errors, errors > 0, budget.ebn0_db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::SystemKind;
    use crate::montecarlo::{run_point, MonteCarloConfig, TrialEngine};
    use crate::scenario::Scenario;
    use vab_util::rng::seeded;
    use vab_util::units::Meters;

    #[test]
    fn clean_short_range_trial_is_error_free() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(30.0));
        let fe = s.front_end();
        let mut rng = seeded(101);
        let (errors, pkt, _) = run_sample_trial(&s, &fe, 64, &mut rng);
        assert_eq!(errors, 0, "30 m river trial should be clean");
        assert!(!pkt);
    }

    #[test]
    fn pab_mostly_clean_at_very_short_range() {
        // A point-scatterer node can sit in a deterministic two-path null
        // at a specific geometry (that is exactly PAB's weakness), so test
        // across several ranges and require a clean majority.
        let mut clean = 0;
        for (i, d) in [6.0, 8.0, 10.0, 12.0, 14.0].iter().enumerate() {
            let s = Scenario::river(SystemKind::Pab, Meters(*d));
            let fe = s.front_end();
            let mut rng = seeded(102 + i as u64);
            let (errors, _, _) = run_sample_trial(&s, &fe, 64, &mut rng);
            if errors == 0 {
                clean += 1;
            }
        }
        assert!(clean >= 3, "only {clean}/5 short-range PAB geometries were clean");
    }

    #[test]
    fn extreme_range_fails() {
        let s = Scenario::river(SystemKind::Pab, Meters(2_000.0));
        let fe = s.front_end();
        let mut rng = seeded(103);
        let (errors, pkt, _) = run_sample_trial(&s, &fe, 64, &mut rng);
        assert!(pkt, "2 km PAB trial must fail");
        assert!(errors > 0);
    }

    #[test]
    fn sample_level_agrees_with_link_budget_at_high_snr() {
        // Both engines must report zero errors in the comfortable regime.
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(100.0));
        let mc_fast = MonteCarloConfig {
            trials: 8,
            bits_per_trial: 96,
            seed: 11,
            engine: TrialEngine::LinkBudget,
            threads: 2,
        };
        let mc_slow = MonteCarloConfig { engine: TrialEngine::SampleLevel, ..mc_fast };
        let fast = run_point(&s, &mc_fast);
        let slow = run_point(&s, &mc_slow);
        assert_eq!(fast.ber.errors(), 0, "link-budget engine");
        assert_eq!(slow.ber.errors(), 0, "sample-level engine");
    }

    #[test]
    fn ocean_waves_degrade_sample_trials() {
        // A moderate sea kills the coherent surface paths, costing the
        // retrodirective array several dB of multipath recombination gain -
        // at a marginal range that separates the two clearly.
        use vab_acoustics::environment::SeaState;
        let calm = Scenario::ocean(SystemKind::Vab { n_pairs: 4 }, Meters(170.0), SeaState::Calm);
        let rough =
            Scenario::ocean(SystemKind::Vab { n_pairs: 4 }, Meters(170.0), SeaState::Moderate);
        let fe_c = calm.front_end();
        let fe_r = rough.front_end();
        let mut errs_calm = 0;
        let mut errs_rough = 0;
        for seed in 0..12 {
            let (e, _, _) = run_sample_trial(&calm, &fe_c, 64, &mut seeded(200 + seed));
            errs_calm += e;
            let (e, _, _) = run_sample_trial(&rough, &fe_r, 64, &mut seeded(200 + seed));
            errs_rough += e;
        }
        assert!(
            errs_rough > errs_calm,
            "rough sea ({errs_rough}) should be worse than calm ({errs_calm})"
        );
    }
}
