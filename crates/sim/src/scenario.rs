//! Experiment scenario: geometry + environment + system + reader, bundled.

use crate::baseline::{FrontEnd, SystemKind};
use crate::linkbudget::ReaderParams;
use vab_acoustics::environment::Environment;
use vab_acoustics::geometry::Position;
use vab_phy::modulation::ModParams;
use vab_util::units::{Degrees, Hertz, Meters};

/// A complete experiment setup.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Water and noise environment.
    pub env: Environment,
    /// Reader (projector + co-located hydrophone) position.
    pub reader_pos: Position,
    /// Node position.
    pub node_pos: Position,
    /// Node orientation: rotation of the array broadside away from the
    /// reader direction (0° = facing the reader).
    pub node_rotation: Degrees,
    /// The deployed system.
    pub system: SystemKind,
    /// Reader parameters.
    pub reader: ReaderParams,
    /// PHY parameters (carrier, bit rate, oversampling).
    pub mod_params: ModParams,
    /// Optional link-layer override (defaults to the system's own stack);
    /// used by coding ablations.
    pub link_override: Option<vab_link::frame::LinkConfig>,
}

impl Scenario {
    /// The canonical river trial: reader at 2 m depth, node at `range`
    /// facing the reader, 100 bps.
    pub fn river(system: SystemKind, range: Meters) -> Self {
        Self {
            env: Environment::river(),
            reader_pos: Position::new(0.0, 0.0, 2.0),
            node_pos: Position::new(range.value(), 0.0, 2.0),
            node_rotation: Degrees(0.0),
            system,
            reader: ReaderParams::vab_default(),
            mod_params: ModParams::vab_default(),
            link_override: None,
        }
    }

    /// The ocean trial at a given sea state.
    pub fn ocean(
        system: SystemKind,
        range: Meters,
        sea_state: vab_acoustics::environment::SeaState,
    ) -> Self {
        Self {
            env: Environment::ocean(sea_state),
            reader_pos: Position::new(0.0, 0.0, 5.0),
            node_pos: Position::new(range.value(), 0.0, 6.0),
            node_rotation: Degrees(0.0),
            system,
            reader: ReaderParams::vab_default(),
            mod_params: ModParams::vab_default(),
            link_override: None,
        }
    }

    /// Sets the uplink bit rate.
    pub fn with_bit_rate(mut self, bps: f64) -> Self {
        self.mod_params = self.mod_params.with_bit_rate(bps);
        self
    }

    /// Sets the node orientation.
    pub fn with_rotation(mut self, rot: Degrees) -> Self {
        self.node_rotation = rot;
        self
    }

    /// Overrides the link-layer stack (coding ablations).
    pub fn with_link(mut self, link: vab_link::frame::LinkConfig) -> Self {
        self.link_override = Some(link);
        self
    }

    /// The link configuration in force: the override if set, else the
    /// system's own stack.
    pub fn link_config(&self) -> vab_link::frame::LinkConfig {
        self.link_override.unwrap_or_else(|| self.system.link_config())
    }

    /// Reader–node separation.
    pub fn range(&self) -> Meters {
        self.reader_pos.distance_to(&self.node_pos)
    }

    /// Carrier frequency.
    pub fn carrier(&self) -> Hertz {
        self.mod_params.carrier
    }

    /// Angle of incidence at the array: the bearing from the node to the
    /// reader, offset by the node's rotation.
    pub fn incidence_angle(&self) -> Degrees {
        // With the node's broadside nominally pointed at the reader,
        // rotation *is* the incidence angle.
        self.node_rotation
    }

    /// Instantiates the node front end.
    pub fn front_end(&self) -> FrontEnd {
        FrontEnd::new(self.system, self.carrier())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vab_acoustics::environment::SeaState;
    use vab_util::approx_eq;

    #[test]
    fn river_scenario_geometry() {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(100.0));
        assert!(approx_eq(s.range().value(), 100.0, 1e-9));
        assert_eq!(s.incidence_angle().value(), 0.0);
        assert_eq!(s.carrier().value(), 18_500.0);
    }

    #[test]
    fn builders_apply() {
        let s = Scenario::river(SystemKind::Pab, Meters(50.0))
            .with_bit_rate(500.0)
            .with_rotation(Degrees(30.0));
        assert_eq!(s.mod_params.bit_rate, 500.0);
        assert_eq!(s.incidence_angle().value(), 30.0);
    }

    #[test]
    fn ocean_scenario_uses_salt_water() {
        let s = Scenario::ocean(SystemKind::Vab { n_pairs: 4 }, Meters(200.0), SeaState::Slight);
        assert_eq!(s.env.kind, vab_acoustics::environment::WaterKind::Salt);
        assert_eq!(s.env.sea_state, SeaState::Slight);
    }
}
