//! Fault-intensity profiles.
//!
//! All probabilities are per-trial (one trial = one deployment geometry /
//! packet exchange, matching the Monte Carlo engines' unit of work);
//! element-failure probability is per *element* per trial.

use vab_util::units::Hertz;

/// The impairment profile a [`crate::FaultPlan`] samples from.
///
/// Build one with [`FaultConfig::off`], [`FaultConfig::severe`], or — the
/// usual route — [`FaultConfig::with_intensity`], which interpolates
/// linearly between those two anchors so sweeps have a single scalar axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// The master knob this profile was built from (0 = nominal,
    /// 1 = severe). Retained for reporting; the per-category fields below
    /// are what the sampler actually uses.
    pub intensity: f64,

    // -- array-element faults ------------------------------------------
    /// Per-element probability of a switch fault (stuck-open or -short).
    pub element_fail_prob: f64,
    /// Probability a switch fault is stuck-*short* (else stuck-open).
    pub stuck_short_fraction: f64,
    /// 1-σ fractional resonance drift applied to every element
    /// (temperature/biofouling detuning on top of build tolerance).
    pub resonance_drift: f64,

    // -- channel impairments -------------------------------------------
    /// Probability of an impulsive-noise burst during the trial.
    pub burst_prob: f64,
    /// SNR penalty of a full burst, dB.
    pub burst_penalty_db: f64,
    /// Probability of a bubble-cloud fade during the trial.
    pub fade_prob: f64,
    /// Maximum fade depth, dB (realized depth is uniform in `[0, max]`).
    pub fade_depth_db: f64,
    /// Probability the surface motion drops the reply outright.
    pub dropout_prob: f64,

    // -- energy faults --------------------------------------------------
    /// Probability of a harvest blackout window during the trial.
    pub blackout_prob: f64,
    /// Fraction of the harvest interval lost to a blackout.
    pub blackout_frac: f64,
    /// Probability the storage capacitor develops a leakage step.
    pub leak_prob: f64,
    /// Leakage-current multiplier once the step occurs.
    pub leak_multiplier: f64,
    /// Probability the node browns out mid-reply.
    pub brownout_prob: f64,

    // -- protocol faults -------------------------------------------------
    /// Probability the ACK for this exchange is corrupted in flight.
    pub ack_corrupt_prob: f64,
    /// Probability the reader restarts (loses MAC state) this trial.
    pub reader_restart_prob: f64,

    /// Carrier used when evaluating resonance-drift detuning.
    pub carrier: Hertz,
}

/// Default carrier for drift evaluation (the paper's 18.5 kHz operating
/// point).
pub const DEFAULT_CARRIER: Hertz = Hertz(18_500.0);

impl FaultConfig {
    /// No faults at all: every sampler draw is a no-op and
    /// [`crate::TrialFaults`] comes back nominal.
    pub fn off() -> Self {
        Self {
            intensity: 0.0,
            element_fail_prob: 0.0,
            stuck_short_fraction: 0.5,
            resonance_drift: 0.0,
            burst_prob: 0.0,
            burst_penalty_db: 0.0,
            fade_prob: 0.0,
            fade_depth_db: 0.0,
            dropout_prob: 0.0,
            blackout_prob: 0.0,
            blackout_frac: 0.0,
            leak_prob: 0.0,
            leak_multiplier: 1.0,
            brownout_prob: 0.0,
            ack_corrupt_prob: 0.0,
            reader_restart_prob: 0.0,
            carrier: DEFAULT_CARRIER,
        }
    }

    /// The severe anchor (`intensity = 1`): a node mid-storm in a snapping
    /// shrimp colony with a corroding capacitor — every category active at
    /// rates that push the stack hard without making delivery impossible.
    pub fn severe() -> Self {
        Self {
            intensity: 1.0,
            element_fail_prob: 0.08,
            stuck_short_fraction: 0.5,
            resonance_drift: 0.03,
            burst_prob: 0.50,
            burst_penalty_db: 6.0,
            fade_prob: 0.40,
            fade_depth_db: 8.0,
            dropout_prob: 0.15,
            blackout_prob: 0.30,
            blackout_frac: 0.50,
            leak_prob: 0.30,
            leak_multiplier: 8.0,
            brownout_prob: 0.20,
            ack_corrupt_prob: 0.25,
            reader_restart_prob: 0.05,
            carrier: DEFAULT_CARRIER,
        }
    }

    /// Linear interpolation between [`off`](Self::off) and
    /// [`severe`](Self::severe); `intensity` is clamped to `[0, 1]`.
    pub fn with_intensity(intensity: f64) -> Self {
        let x = intensity.clamp(0.0, 1.0);
        let lo = Self::off();
        let hi = Self::severe();
        let lerp = |a: f64, b: f64| a + x * (b - a);
        Self {
            intensity: x,
            element_fail_prob: lerp(lo.element_fail_prob, hi.element_fail_prob),
            stuck_short_fraction: hi.stuck_short_fraction,
            resonance_drift: lerp(lo.resonance_drift, hi.resonance_drift),
            burst_prob: lerp(lo.burst_prob, hi.burst_prob),
            burst_penalty_db: lerp(lo.burst_penalty_db, hi.burst_penalty_db),
            fade_prob: lerp(lo.fade_prob, hi.fade_prob),
            fade_depth_db: lerp(lo.fade_depth_db, hi.fade_depth_db),
            dropout_prob: lerp(lo.dropout_prob, hi.dropout_prob),
            blackout_prob: lerp(lo.blackout_prob, hi.blackout_prob),
            blackout_frac: lerp(lo.blackout_frac, hi.blackout_frac),
            leak_prob: lerp(lo.leak_prob, hi.leak_prob),
            leak_multiplier: lerp(lo.leak_multiplier, hi.leak_multiplier),
            brownout_prob: lerp(lo.brownout_prob, hi.brownout_prob),
            ack_corrupt_prob: lerp(lo.ack_corrupt_prob, hi.ack_corrupt_prob),
            reader_restart_prob: lerp(lo.reader_restart_prob, hi.reader_restart_prob),
            carrier: DEFAULT_CARRIER,
        }
    }

    /// `true` when this profile can never produce a fault.
    pub fn is_off(&self) -> bool {
        self.element_fail_prob == 0.0
            && self.resonance_drift == 0.0
            && self.burst_prob == 0.0
            && self.fade_prob == 0.0
            && self.dropout_prob == 0.0
            && self.blackout_prob == 0.0
            && self.leak_prob == 0.0
            && self.brownout_prob == 0.0
            && self.ack_corrupt_prob == 0.0
            && self.reader_restart_prob == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_off() {
        assert!(FaultConfig::off().is_off());
        assert!(!FaultConfig::severe().is_off());
    }

    #[test]
    fn intensity_interpolates_monotonically() {
        let a = FaultConfig::with_intensity(0.2);
        let b = FaultConfig::with_intensity(0.7);
        assert!(a.burst_prob < b.burst_prob);
        assert!(a.element_fail_prob < b.element_fail_prob);
        assert!(a.fade_depth_db < b.fade_depth_db);
        assert!(a.leak_multiplier < b.leak_multiplier);
    }

    #[test]
    fn intensity_clamps() {
        assert_eq!(FaultConfig::with_intensity(-3.0), FaultConfig::with_intensity(0.0));
        assert_eq!(FaultConfig::with_intensity(9.0), FaultConfig::with_intensity(1.0));
    }

    #[test]
    fn zero_intensity_is_off() {
        assert!(FaultConfig::with_intensity(0.0).is_off());
    }
}
