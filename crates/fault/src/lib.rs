//! Deterministic cross-layer fault injection for the VAB reproduction.
//!
//! The paper's headline claim is *robustness*: the link keeps delivering
//! packets while array elements detune, shrimp snap, the surface heaves,
//! and the energy harvester browns the node out. This crate turns those
//! impairments into a typed, seed-derived **fault plan** the rest of the
//! stack consumes:
//!
//! * [`FaultConfig`] — the impairment intensity profile (one master knob,
//!   `0.0` = nominal, `1.0` = severe, plus per-category probabilities);
//! * [`FaultPlan`] — a schedule built from the campaign master seed that
//!   emits [`TrialFaults`] for any trial index. Like `vab-sim`'s Monte
//!   Carlo sharding, every trial's faults derive from
//!   `derive_seed(plan_seed, trial)`, so a faulted campaign is
//!   bit-reproducible regardless of thread count or evaluation order.
//!
//! Consumers: `vab_core::array` applies [`ElementFault`]s, the simulator
//! engines apply [`ChannelFaults`], `vab_harvest` applies [`EnergyFaults`],
//! and the ARQ/MAC layers react to [`ProtocolFaults`]. The graceful
//! *responses* (ARQ backoff, rate fallback, re-inventory, schedule
//! re-planning) live with the state machines they protect; this crate only
//! decides, deterministically, what breaks and when.
//!
//! The same philosophy extends one level up: [`WorkerFaultPlan`] breaks a
//! `vab-svc` worker thread, and [`SvcFaultPlan`] ([`svc`]) breaks the
//! serving machinery itself — wire frames, cache persistence, the daemon
//! process — driving the service layer's chaos drills (figure F20).

pub mod config;
pub mod plan;
pub mod svc;
pub mod worker;

pub use config::FaultConfig;
pub use plan::{
    BurstFault, ChannelFaults, ElementFault, EnergyFaults, FaultPlan, ProtocolFaults, SwitchFault,
    TrialFaults,
};
pub use svc::{SvcFaultConfig, SvcFaultPlan, WireFault};
pub use worker::WorkerFaultPlan;
