//! Deterministic chaos injection for the service layer (`vab-svc`).
//!
//! [`crate::plan`] breaks the simulated link and [`crate::worker`] breaks
//! a single worker thread; this module breaks the *serving machinery*
//! around both — the wire protocol, the persistence tier and the daemon
//! process — so the service layer's recovery paths (client reconnect and
//! idempotent resubmission, cache quarantine-and-recompute, graceful
//! drain) become exercised, measured behaviour instead of dead code.
//!
//! Everything is seed-pure, in the same discipline as every other plan in
//! this crate: a decision is a function of `(plan seed, key, attempt)`
//! where `key` identifies the request (a job's content digest, or a hash
//! of the op for digest-free ops) and `attempt` counts prior deliveries
//! of the same key. Keying on *content* rather than on wall-clock or
//! connection identity is what makes a whole chaos drill bit-reproducible
//! across worker counts: the third retry of job `d` sees the same fate no
//! matter which thread serves it or when.
//!
//! The fault classes:
//!
//! * **Wire faults** ([`WireFault`]): the daemon drops the connection
//!   before replying, truncates the reply mid-frame (a slow-loris partial
//!   write followed by a hangup), or corrupts one byte of the frame.
//! * **Disk faults**: a cache persistence write fails; the entry stays
//!   resident in memory but the next daemon generation must recompute.
//! * **Worker panics**: as [`crate::WorkerFaultPlan`], but attempt-aware,
//!   so a retried job can model a *transient* crash that a resubmission
//!   survives.
//! * **Crash points**: where in a drill of `n` jobs the daemon should be
//!   killed and restarted.

use vab_util::rng::derive_seed;

/// Stream tag separating wire-fault draws from every other lineage.
const WIRE_STREAM: u64 = 0x51C4_0FF5;
/// Stream tag for disk-write-failure draws.
const DISK_STREAM: u64 = 0xD15C_FA11;
/// Stream tag for attempt-aware worker-panic draws.
const PANIC_STREAM: u64 = 0x9A1C_0DE5;
/// Stream tag for crash-point selection.
const CRASH_STREAM: u64 = 0xC4A5_8001;

/// Per-delivery fault probabilities for the service layer. Probabilities
/// are per *response attempt* (wire), per *persist attempt* (disk), per
/// *execution attempt* (panic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvcFaultConfig {
    /// Master knob this profile was built from (0 = calm, 1 = hostile).
    pub intensity: f64,
    /// Probability the daemon drops the connection before writing the
    /// response (the client sees EOF where a frame should be).
    pub drop_prob: f64,
    /// Probability the response is truncated mid-frame and the
    /// connection then dropped (slow-loris partial write).
    pub truncate_prob: f64,
    /// Probability one byte of the response frame is corrupted (framing
    /// survives; the JSON does not).
    pub corrupt_prob: f64,
    /// Probability a cache persistence write fails.
    pub disk_fail_prob: f64,
    /// Probability a worker panics executing a given attempt of a job.
    pub panic_prob: f64,
    /// Probability any single drill position is a daemon crash point.
    pub crash_prob: f64,
}

impl SvcFaultConfig {
    /// No chaos: every decision is a no-op.
    pub fn off() -> Self {
        Self {
            intensity: 0.0,
            drop_prob: 0.0,
            truncate_prob: 0.0,
            corrupt_prob: 0.0,
            disk_fail_prob: 0.0,
            panic_prob: 0.0,
            crash_prob: 0.0,
        }
    }

    /// The hostile anchor (`intensity = 1`): roughly one in two responses
    /// arrives damaged, persistence fails a fifth of the time, and one in
    /// six executions panics. Recovery is still possible — each retry
    /// redraws — but nothing can be assumed to work the first time.
    pub fn hostile() -> Self {
        Self {
            intensity: 1.0,
            drop_prob: 0.20,
            truncate_prob: 0.12,
            corrupt_prob: 0.12,
            disk_fail_prob: 0.20,
            panic_prob: 0.15,
            crash_prob: 0.10,
        }
    }

    /// Linear interpolation between [`SvcFaultConfig::off`] and
    /// [`SvcFaultConfig::hostile`], giving chaos sweeps one scalar axis.
    pub fn with_intensity(intensity: f64) -> Self {
        let x = intensity.clamp(0.0, 1.0);
        let hi = Self::hostile();
        Self {
            intensity: x,
            drop_prob: hi.drop_prob * x,
            truncate_prob: hi.truncate_prob * x,
            corrupt_prob: hi.corrupt_prob * x,
            disk_fail_prob: hi.disk_fail_prob * x,
            panic_prob: hi.panic_prob * x,
            crash_prob: hi.crash_prob * x,
        }
    }

    /// `true` when every probability is zero.
    pub fn is_off(&self) -> bool {
        self.drop_prob <= 0.0
            && self.truncate_prob <= 0.0
            && self.corrupt_prob <= 0.0
            && self.disk_fail_prob <= 0.0
            && self.panic_prob <= 0.0
            && self.crash_prob <= 0.0
    }
}

/// What happens to one wire response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireFault {
    /// Deliver the frame intact.
    None,
    /// Drop the connection without writing anything.
    DropBeforeWrite,
    /// Write only this fraction of the frame, then drop the connection.
    Truncate {
        /// Fraction of the frame's bytes that make it out, in `(0, 1)`.
        keep_frac: f64,
    },
    /// Flip one byte of the frame at this fractional position (the
    /// newline terminator is never touched, so framing survives).
    CorruptByte {
        /// Fractional position of the damaged byte, in `[0, 1)`.
        pos_frac: f64,
    },
}

impl WireFault {
    /// Short label for events and counters.
    pub fn label(&self) -> &'static str {
        match self {
            WireFault::None => "none",
            WireFault::DropBeforeWrite => "wire_drop",
            WireFault::Truncate { .. } => "wire_truncate",
            WireFault::CorruptByte { .. } => "wire_corrupt",
        }
    }
}

/// Maps 53 high bits of a derived seed onto `[0, 1)`.
fn unit(seed: u64) -> f64 {
    (seed >> 11) as f64 / (1u64 << 53) as f64
}

/// Seed-pure chaos plan for the service layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvcFaultPlan {
    seed: u64,
    cfg: SvcFaultConfig,
}

impl SvcFaultPlan {
    /// Builds the plan for a chaos drill with `master_seed`.
    pub fn new(master_seed: u64, cfg: SvcFaultConfig) -> Self {
        Self { seed: master_seed, cfg }
    }

    /// The profile this plan draws from.
    pub fn config(&self) -> &SvcFaultConfig {
        &self.cfg
    }

    /// The fate of response-delivery `attempt` for request `key`. Pure in
    /// `(seed, key, attempt)`; the classes are drawn from one uniform so
    /// at most one fault fires per delivery.
    pub fn wire_fault(&self, key: u64, attempt: u32) -> WireFault {
        if self.cfg.is_off() {
            return WireFault::None;
        }
        let draw_seed = derive_seed(derive_seed(self.seed, WIRE_STREAM), mix(key, attempt));
        let u = unit(draw_seed);
        let c = &self.cfg;
        if u < c.drop_prob {
            WireFault::DropBeforeWrite
        } else if u < c.drop_prob + c.truncate_prob {
            // Re-mix for the independent shape parameter.
            let keep = 0.1 + 0.8 * unit(derive_seed(draw_seed, 1));
            WireFault::Truncate { keep_frac: keep }
        } else if u < c.drop_prob + c.truncate_prob + c.corrupt_prob {
            WireFault::CorruptByte { pos_frac: unit(derive_seed(draw_seed, 2)) }
        } else {
            WireFault::None
        }
    }

    /// Should persistence write `attempt` for entry `key` fail?
    pub fn disk_write_fails(&self, key: u64, attempt: u32) -> bool {
        if self.cfg.disk_fail_prob <= 0.0 {
            return false;
        }
        let draw = derive_seed(derive_seed(self.seed, DISK_STREAM), mix(key, attempt));
        unit(draw) < self.cfg.disk_fail_prob
    }

    /// Should execution `attempt` of job `key` panic? Unlike
    /// [`crate::WorkerFaultPlan::panics`], each attempt redraws, so the
    /// injected crashes are transient and a resubmission can succeed.
    pub fn worker_panics(&self, key: u64, attempt: u32) -> bool {
        if self.cfg.panic_prob <= 0.0 {
            return false;
        }
        if self.cfg.panic_prob >= 1.0 {
            return true;
        }
        let draw = derive_seed(derive_seed(self.seed, PANIC_STREAM), mix(key, attempt));
        unit(draw) < self.cfg.panic_prob
    }

    /// The daemon crash points for a drill of `n_jobs` sequential jobs:
    /// the job indices *after* which the daemon dies and must be
    /// restarted. Sorted, deduplicated, never includes the last index
    /// (a crash after the final job would go unobserved).
    pub fn crash_points(&self, n_jobs: usize) -> Vec<usize> {
        if self.cfg.crash_prob <= 0.0 || n_jobs < 2 {
            return Vec::new();
        }
        let base = derive_seed(self.seed, CRASH_STREAM);
        (0..n_jobs.saturating_sub(1))
            .filter(|&i| unit(derive_seed(base, i as u64)) < self.cfg.crash_prob)
            .collect()
    }
}

/// Folds `(key, attempt)` into one stream index without collisions
/// between small attempts of nearby keys.
fn mix(key: u64, attempt: u32) -> u64 {
    derive_seed(key, 0xA77E_3070_u64 + attempt as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure() {
        let plan = SvcFaultPlan::new(42, SvcFaultConfig::with_intensity(0.7));
        let again = SvcFaultPlan::new(42, SvcFaultConfig::with_intensity(0.7));
        for key in 0..64u64 {
            for attempt in 0..4u32 {
                assert_eq!(plan.wire_fault(key, attempt), again.wire_fault(key, attempt));
                assert_eq!(
                    plan.disk_write_fails(key, attempt),
                    again.disk_write_fails(key, attempt)
                );
                assert_eq!(plan.worker_panics(key, attempt), again.worker_panics(key, attempt));
            }
        }
        assert_eq!(plan.crash_points(20), again.crash_points(20));
    }

    #[test]
    fn off_plan_never_faults() {
        let plan = SvcFaultPlan::new(7, SvcFaultConfig::off());
        for key in 0..128u64 {
            assert_eq!(plan.wire_fault(key, 0), WireFault::None);
            assert!(!plan.disk_write_fails(key, 0));
            assert!(!plan.worker_panics(key, 0));
        }
        assert!(plan.crash_points(100).is_empty());
        assert!(SvcFaultConfig::with_intensity(0.0).is_off());
    }

    #[test]
    fn retries_redraw_their_fate() {
        // At hostile intensity a key whose first delivery faults must,
        // within a handful of attempts, see a clean one — otherwise the
        // recovery loops could never terminate.
        let plan = SvcFaultPlan::new(3, SvcFaultConfig::hostile());
        for key in 0..200u64 {
            let clean = (0..32u32).any(|a| plan.wire_fault(key, a) == WireFault::None);
            assert!(clean, "key {key} never sees a clean delivery in 32 attempts");
        }
    }

    #[test]
    fn fault_rates_scale_with_intensity() {
        let rate = |x: f64| {
            let plan = SvcFaultPlan::new(11, SvcFaultConfig::with_intensity(x));
            (0..2000u64).filter(|&k| plan.wire_fault(k, 0) != WireFault::None).count()
        };
        let (lo, mid, hi) = (rate(0.1), rate(0.5), rate(1.0));
        assert!(lo < mid && mid < hi, "wire-fault counts not monotone: {lo}, {mid}, {hi}");
        // Hostile wire-fault mass is drop+truncate+corrupt = 0.44.
        assert!((700..1100).contains(&hi), "hostile rate {hi} far from 880/2000");
    }

    #[test]
    fn truncate_and_corrupt_shapes_are_in_range() {
        let plan = SvcFaultPlan::new(5, SvcFaultConfig::hostile());
        for key in 0..2000u64 {
            match plan.wire_fault(key, 0) {
                WireFault::Truncate { keep_frac } => {
                    assert!(keep_frac > 0.0 && keep_frac < 1.0, "keep_frac {keep_frac}");
                }
                WireFault::CorruptByte { pos_frac } => {
                    assert!((0.0..1.0).contains(&pos_frac), "pos_frac {pos_frac}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn crash_points_are_sorted_interior_and_scale() {
        let plan = SvcFaultPlan::new(9, SvcFaultConfig::hostile());
        let points = plan.crash_points(50);
        assert!(points.windows(2).all(|w| w[0] < w[1]), "sorted: {points:?}");
        assert!(points.iter().all(|&p| p < 49), "interior: {points:?}");
        let calm = SvcFaultPlan::new(9, SvcFaultConfig::with_intensity(0.1));
        assert!(calm.crash_points(50).len() <= points.len());
    }
}
