//! Seed-derived fault schedules and the typed events they emit.

use crate::config::FaultConfig;
use rand::rngs::StdRng;
use rand::RngExt;
use vab_piezo::bvd::Bvd;
use vab_piezo::reflection::ModulationStates;
use vab_piezo::tolerance::{sample_transducer, Tolerances};
use vab_util::rng::{derive_seed, seeded};

/// Stream constant separating the fault plan's RNG lineage from the Monte
/// Carlo trial streams that share the same master seed.
pub const FAULT_STREAM: u64 = 0xFA01_7AB1E;

/// How a modulation switch fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchFault {
    /// Element disconnected: contributes nothing (kills its Van Atta pair's
    /// retro path).
    StuckOpen,
    /// Switch frozen in the reflect state: the element still scatters and
    /// harvests, but its pair no longer modulates.
    StuckShort,
}

/// One failed array element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementFault {
    /// Element index (0-based, into the full element list).
    pub element: usize,
    /// Failure mode.
    pub kind: SwitchFault,
}

/// An impulsive-noise burst (snapping-shrimp chorus peak, trawler pass).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstFault {
    /// SNR penalty while the burst is active, dB.
    pub penalty_db: f64,
    /// Fraction of the packet the burst covers.
    pub duty: f64,
}

/// Channel impairments for one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelFaults {
    /// Impulsive burst, if one occurs.
    pub burst: Option<BurstFault>,
    /// Bubble-cloud fade depth, dB (0 = none).
    pub fade_db: f64,
    /// Surface-motion dropout: the reply is lost outright.
    pub dropout: bool,
}

impl ChannelFaults {
    /// Effective extra link loss in dB for link-budget-style engines: the
    /// fade plus the burst's duty-weighted penalty (a burst covering 30 %
    /// of the packet at 6 dB is modelled as a 1.8 dB average penalty).
    pub fn extra_loss_db(&self) -> f64 {
        self.fade_db + self.burst.map_or(0.0, |b| b.penalty_db * b.duty)
    }
}

/// Energy-subsystem faults for one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyFaults {
    /// Fraction of the harvest interval lost to a blackout (0 = none).
    pub blackout_frac: f64,
    /// Storage leakage-current multiplier (1 = nominal).
    pub leak_multiplier: f64,
    /// The node browns out mid-reply, truncating the uplink.
    pub brownout_mid_reply: bool,
}

/// Protocol-level faults for one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolFaults {
    /// The reader's ACK is corrupted in flight (sender sees a timeout).
    pub ack_corrupted: bool,
    /// The reader restarts and loses MAC/inventory state.
    pub reader_restart: bool,
}

/// Everything that breaks during one trial, fully determined by
/// `(master seed, trial index)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialFaults {
    /// Failed array elements.
    pub elements: Vec<ElementFault>,
    /// Aggregate modulation-depth scale from per-element resonance drift
    /// (1.0 = no drift; multiplies the front end's modulation depth).
    pub depth_scale: f64,
    /// Channel impairments.
    pub channel: ChannelFaults,
    /// Energy faults.
    pub energy: EnergyFaults,
    /// Protocol faults.
    pub protocol: ProtocolFaults,
}

impl TrialFaults {
    /// The no-fault trial.
    pub fn nominal() -> Self {
        Self {
            elements: Vec::new(),
            depth_scale: 1.0,
            channel: ChannelFaults { burst: None, fade_db: 0.0, dropout: false },
            energy: EnergyFaults {
                blackout_frac: 0.0,
                leak_multiplier: 1.0,
                brownout_mid_reply: false,
            },
            protocol: ProtocolFaults { ack_corrupted: false, reader_restart: false },
        }
    }

    /// `true` when nothing is faulted this trial.
    pub fn is_nominal(&self) -> bool {
        self == &Self::nominal()
    }

    /// Total count of discrete fault events (for reporting).
    pub fn event_count(&self) -> usize {
        self.elements.len()
            + usize::from(self.channel.burst.is_some())
            + usize::from(self.channel.fade_db > 0.0)
            + usize::from(self.channel.dropout)
            + usize::from(self.energy.blackout_frac > 0.0)
            + usize::from(self.energy.leak_multiplier > 1.0)
            + usize::from(self.energy.brownout_mid_reply)
            + usize::from(self.protocol.ack_corrupted)
            + usize::from(self.protocol.reader_restart)
    }
}

/// A deterministic fault schedule over a campaign.
///
/// Construction derives a dedicated seed from the campaign master seed; the
/// faults of trial `t` are then a pure function of `(plan seed, t)` — no
/// shared mutable state — so campaigns sharded across any number of worker
/// threads reproduce bit-identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Builds the plan for a campaign with `master_seed`.
    pub fn new(master_seed: u64, cfg: FaultConfig) -> Self {
        Self { seed: derive_seed(master_seed, FAULT_STREAM), cfg }
    }

    /// The profile this plan samples from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Samples the faults for trial `trial` on a node with `n_elements`
    /// array elements. Pure: same arguments, same result, always.
    pub fn trial_faults(&self, trial: u64, n_elements: usize) -> TrialFaults {
        if self.cfg.is_off() {
            return TrialFaults::nominal();
        }
        let mut rng = seeded(derive_seed(self.seed, trial));
        let cfg = &self.cfg;

        // Array-element switch faults.
        let mut elements = Vec::new();
        for element in 0..n_elements {
            if rng.random::<f64>() < cfg.element_fail_prob {
                let kind = if rng.random::<f64>() < cfg.stuck_short_fraction {
                    SwitchFault::StuckShort
                } else {
                    SwitchFault::StuckOpen
                };
                elements.push(ElementFault { element, kind });
            }
        }

        // Per-element resonance drift → aggregate modulation-depth scale.
        let depth_scale = if cfg.resonance_drift > 0.0 && n_elements > 0 {
            drift_depth_scale(cfg, n_elements, &mut rng)
        } else {
            1.0
        };

        // Channel impairments.
        let burst = if rng.random::<f64>() < cfg.burst_prob {
            Some(BurstFault {
                penalty_db: cfg.burst_penalty_db * (0.5 + 0.5 * rng.random::<f64>()),
                duty: 0.1 + 0.4 * rng.random::<f64>(),
            })
        } else {
            None
        };
        let fade_db = if rng.random::<f64>() < cfg.fade_prob {
            cfg.fade_depth_db * rng.random::<f64>()
        } else {
            0.0
        };
        let dropout = rng.random::<f64>() < cfg.dropout_prob;

        // Energy faults.
        let blackout_frac =
            if rng.random::<f64>() < cfg.blackout_prob { cfg.blackout_frac } else { 0.0 };
        let leak_multiplier =
            if rng.random::<f64>() < cfg.leak_prob { cfg.leak_multiplier } else { 1.0 };
        let brownout_mid_reply = rng.random::<f64>() < cfg.brownout_prob;

        // Protocol faults.
        let ack_corrupted = rng.random::<f64>() < cfg.ack_corrupt_prob;
        let reader_restart = rng.random::<f64>() < cfg.reader_restart_prob;

        let faults = TrialFaults {
            elements,
            depth_scale,
            channel: ChannelFaults { burst, fade_db, dropout },
            energy: EnergyFaults { blackout_frac, leak_multiplier, brownout_mid_reply },
            protocol: ProtocolFaults { ack_corrupted, reader_restart },
        };
        if !faults.is_nominal() {
            vab_obs::event!(
                "fault.plan",
                "fault_activated",
                trial = trial,
                events = faults.event_count(),
                element_faults = faults.elements.len(),
                fade_db = faults.channel.fade_db,
                burst = faults.channel.burst.is_some(),
                dropout = faults.channel.dropout,
                brownout_mid_reply = faults.energy.brownout_mid_reply,
                ack_corrupted = faults.protocol.ack_corrupted,
                reader_restart = faults.protocol.reader_restart,
            );
            vab_obs::metrics::inc("fault.activations", 1);
            vab_obs::metrics::inc("fault.events", faults.event_count() as u64);
        }
        faults
    }
}

/// Mean modulation-depth ratio across `n_elements` drift-perturbed
/// transducers, scored against the nominal co-designed states — the same
/// "states trimmed once at design time" convention as
/// `vab_piezo::tolerance::depth_yield`.
fn drift_depth_scale(cfg: &FaultConfig, n_elements: usize, rng: &mut StdRng) -> f64 {
    let nominal = Bvd::vab_default();
    let states = ModulationStates::vab(&nominal, cfg.carrier);
    let nominal_depth = states.modulation_depth(&nominal, cfg.carrier);
    if nominal_depth <= 0.0 {
        return 1.0;
    }
    let tol = Tolerances { resonance: cfg.resonance_drift, q_factor: 0.0, c0: 0.0, network: 0.0 };
    let mut sum = 0.0;
    for _ in 0..n_elements {
        let drifted = sample_transducer(&nominal, &tol, rng);
        sum += states.modulation_depth(&drifted, cfg.carrier);
    }
    (sum / n_elements as f64 / nominal_depth).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_faults_are_pure() {
        let plan = FaultPlan::new(2023, FaultConfig::severe());
        for trial in [0u64, 1, 17, 1499] {
            assert_eq!(plan.trial_faults(trial, 8), plan.trial_faults(trial, 8));
        }
    }

    #[test]
    fn different_trials_differ() {
        let plan = FaultPlan::new(2023, FaultConfig::severe());
        let distinct =
            (0..50).filter(|&t| plan.trial_faults(t, 8) != plan.trial_faults(t + 1, 8)).count();
        assert!(distinct > 40, "only {distinct}/50 neighbouring trials differed");
    }

    #[test]
    fn off_plan_is_nominal() {
        let plan = FaultPlan::new(7, FaultConfig::off());
        for trial in 0..20 {
            assert!(plan.trial_faults(trial, 8).is_nominal());
        }
    }

    #[test]
    fn severe_plan_actually_faults() {
        let plan = FaultPlan::new(11, FaultConfig::severe());
        let events: usize = (0..200).map(|t| plan.trial_faults(t, 8).event_count()).sum();
        assert!(events > 200, "severe plan produced only {events} events in 200 trials");
    }

    #[test]
    fn fault_rate_grows_with_intensity() {
        let count = |intensity: f64| -> usize {
            let plan = FaultPlan::new(5, FaultConfig::with_intensity(intensity));
            (0..300).map(|t| plan.trial_faults(t, 8).event_count()).sum()
        };
        let (lo, mid, hi) = (count(0.1), count(0.5), count(1.0));
        assert!(lo < mid && mid < hi, "event counts not monotone: {lo}, {mid}, {hi}");
    }

    #[test]
    fn drift_erodes_depth_but_not_catastrophically() {
        let plan = FaultPlan::new(3, FaultConfig::severe());
        let mean: f64 = (0..100).map(|t| plan.trial_faults(t, 8).depth_scale).sum::<f64>() / 100.0;
        assert!(mean < 1.0, "drift should cost some depth on average: {mean}");
        assert!(mean > 0.6, "3 % drift should not destroy the link: {mean}");
    }

    #[test]
    fn extra_loss_composes_fade_and_burst() {
        let ch = ChannelFaults {
            burst: Some(BurstFault { penalty_db: 6.0, duty: 0.5 }),
            fade_db: 2.0,
            dropout: false,
        };
        assert!((ch.extra_loss_db() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn plan_is_independent_of_query_order() {
        let plan = FaultPlan::new(99, FaultConfig::with_intensity(0.6));
        let forward: Vec<_> = (0..32).map(|t| plan.trial_faults(t, 4)).collect();
        let mut backward: Vec<_> = (0..32).rev().map(|t| plan.trial_faults(t, 4)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }
}
