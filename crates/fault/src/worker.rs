//! Deterministic worker-level fault injection for the service layer.
//!
//! The physics faults in [`crate::plan`] break the *simulated link*; this
//! module breaks the *machinery running the simulation* — it decides,
//! seed-purely, whether a `vab-svc` worker should panic while executing a
//! given job. The pool's `catch_unwind` isolation (building on the typed
//! `MonteCarloError::WorkerPanicked` contract in `vab-sim`) must convert
//! that panic into a typed job failure while the daemon keeps serving,
//! and the integration tests drive exactly that path.
//!
//! Like every other plan in this crate, the decision derives from
//! `derive_seed(seed, key)` alone: the same seed and job digest always
//! panic (or not), regardless of worker count or submission order.

use vab_util::rng::derive_seed;

/// Dedicated stream tag so worker-fault draws never collide with the
/// physics fault streams.
const WORKER_STREAM: u64 = 0x0FA1_17ED;

/// Seed-pure plan for injected worker panics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerFaultPlan {
    seed: u64,
    panic_prob: f64,
}

impl WorkerFaultPlan {
    /// A plan that panics on each job independently with probability
    /// `panic_prob` (clamped to `[0, 1]`), keyed on the job's digest.
    pub fn new(seed: u64, panic_prob: f64) -> Self {
        Self { seed: derive_seed(seed, WORKER_STREAM), panic_prob: panic_prob.clamp(0.0, 1.0) }
    }

    /// A plan that panics on every job — the isolation test's hammer.
    pub fn always(seed: u64) -> Self {
        Self::new(seed, 1.0)
    }

    /// The configured panic probability.
    pub fn panic_prob(&self) -> f64 {
        self.panic_prob
    }

    /// Should the worker executing the job identified by `job_key` (the
    /// job's content digest) panic? Deterministic in `(seed, job_key)`.
    pub fn panics(&self, job_key: u64) -> bool {
        if self.panic_prob <= 0.0 {
            return false;
        }
        if self.panic_prob >= 1.0 {
            return true;
        }
        let u = (derive_seed(self.seed, job_key) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.panic_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed_and_key() {
        let p = WorkerFaultPlan::new(7, 0.5);
        for key in 0..64u64 {
            assert_eq!(p.panics(key), WorkerFaultPlan::new(7, 0.5).panics(key));
        }
        let other = WorkerFaultPlan::new(8, 0.5);
        assert!((0..64u64).any(|k| p.panics(k) != other.panics(k)));
    }

    #[test]
    fn extremes_are_total() {
        let never = WorkerFaultPlan::new(1, 0.0);
        let always = WorkerFaultPlan::always(1);
        for key in 0..32u64 {
            assert!(!never.panics(key));
            assert!(always.panics(key));
        }
    }

    #[test]
    fn probability_is_roughly_respected() {
        let p = WorkerFaultPlan::new(3, 0.25);
        let hits = (0..4000u64).filter(|&k| p.panics(k)).count();
        assert!((800..1200).contains(&hits), "hit count {hits} far from 1000");
    }
}
