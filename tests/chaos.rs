//! Integration tests for the chaos-hardened service layer (F20 and the
//! crash/restart story): the drill's CSV must be bit-identical across
//! runs and pool widths, no completed result may ever be lost, and a
//! daemon restart over the same cache directory must serve previously
//! completed work warm and byte-identical.

use std::path::PathBuf;
use std::sync::Arc;

use vab::svc::cache::ResultCache;
use vab::svc::client::Client;
use vab::svc::exec::Executor;
use vab::svc::job::{EngineSpec, EnvSpec, JobSpec, SystemSpec};
use vab::svc::pool::PoolConfig;
use vab::svc::server::{Server, ServerConfig};
use vab::util::rng::derive_seed;
use vab::util::threads::set_jobs;
use vab_bench::chaos::f20_chaos_drill;
use vab_bench::ExpConfig;

fn quick() -> ExpConfig {
    ExpConfig { trials: 4, bits: 64, seed: 2023 }
}

/// Column order of the F20 table (see `vab_bench::chaos`).
const COL_JOBS: usize = 1;
const COL_COMPLETED: usize = 2;
const COL_LOST: usize = 3;
const COL_RESTARTS: usize = 12;

#[test]
fn f20_is_bit_identical_across_runs_and_pool_widths_and_loses_nothing() {
    set_jobs(1);
    let serial = f20_chaos_drill(&quick()).to_csv();
    set_jobs(8);
    let wide = f20_chaos_drill(&quick()).to_csv();
    set_jobs(0);
    let again = f20_chaos_drill(&quick()).to_csv();
    assert_eq!(serial, wide, "F20 must not depend on the daemon's worker count");
    assert_eq!(serial, again, "F20 must be bit-identical across runs");

    let mut saw_restart = false;
    for line in serial.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        assert_eq!(
            cells[COL_JOBS], cells[COL_COMPLETED],
            "every job must complete at every intensity: {line}"
        );
        assert_eq!(cells[COL_LOST], "0", "no completed result may be lost: {line}");
        saw_restart |= cells[COL_RESTARTS].parse::<u64>().expect("restarts") >= 1;
    }
    assert!(saw_restart, "the drill must exercise daemon-restart recovery:\n{serial}");
}

fn restart_jobs(cfg: &ExpConfig) -> Vec<JobSpec> {
    (0..6)
        .map(|i| JobSpec::McPoint {
            system: SystemSpec::Vab { n_pairs: 4 },
            env: EnvSpec::River,
            range_m: 30.0 + 15.0 * i as f64,
            rotation_deg: 0.0,
            trials: cfg.trials,
            bits: cfg.bits,
            seed: derive_seed(cfg.seed, 200 + i as u64),
            engine: EngineSpec::LinkBudget,
        })
        .collect()
}

fn start_persistent_server(dir: &std::path::Path) -> Server {
    let cache = Arc::new(ResultCache::persistent(32, dir).expect("cache dir"));
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        pool: PoolConfig { workers: 2, queue_cap: 32, retry_after_ms: 10 },
        ..ServerConfig::default()
    };
    Server::start(cfg, Executor::new(), cache).expect("bind")
}

#[test]
fn daemon_restart_serves_completed_work_warm_with_zero_loss() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("vab-chaos-it-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = quick();
    let jobs = restart_jobs(&cfg);

    // First half of the batch, then the daemon goes away (its results
    // were persisted atomically as each job completed).
    let mut server = start_persistent_server(&dir);
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let mut first = Vec::new();
    for job in &jobs[..3] {
        let (resp, _) = client.run_job_resilient(job, 30_000).expect("first half");
        assert_eq!(resp.str_field("status"), Some("done"), "{}", resp.render());
        first.push(resp.get("result").expect("result").render());
    }
    server.shutdown();

    // Restart over the same cache directory; the client re-points and
    // reconnects, and the second batch serves the first half warm.
    let mut server = start_persistent_server(&dir);
    client.set_addr(&server.addr().to_string());
    client.reconnect().expect("reconnect to the restarted daemon");
    for (i, job) in jobs.iter().enumerate() {
        let (resp, _) = client.run_job_resilient(job, 30_000).expect("second batch");
        assert_eq!(resp.str_field("status"), Some("done"), "{}", resp.render());
        let payload = resp.get("result").expect("result").render();
        if i < 3 {
            assert_eq!(
                resp.bool_field("cached"),
                Some(true),
                "restart must serve previously completed work from the cache: {}",
                resp.render()
            );
            assert_eq!(payload, first[i], "warm results must be byte-identical (job {i})");
        }
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
