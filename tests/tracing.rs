//! End-to-end distributed tracing and live telemetry for the service
//! layer: one job's life must reconstruct as a single span tree (client
//! submit → server handle → cache lookup → queue wait → execute → cache
//! persist) with **content-derived identity** — the span set produced by
//! a fixed workload is bit-identical at any worker count — and the
//! daemon's `metrics`/`watch` wire ops must serve live telemetry
//! samples. Also pins the control-op fault-identity fix: `stats`
//! requests each draw their own wire fate, so a chaos plan can never
//! livelock the whole control plane on one shared key.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use vab::fault::{SvcFaultConfig, SvcFaultPlan};
use vab::obs::sink::JsonlSink;
use vab::obs::TraceContext;
use vab::svc::cache::ResultCache;
use vab::svc::client::Client;
use vab::svc::exec::Executor;
use vab::svc::job::{EngineSpec, EnvSpec, JobSpec, SystemSpec};
use vab::svc::pool::PoolConfig;
use vab::svc::server::{Server, ServerConfig};
use vab_obsctl::trace::Trace;
use vab_obsctl::waterfall::Waterfall;

/// The obs sink and registry are process-global; tests in this binary
/// run on parallel threads, so every traced test takes this lock and
/// leaves obs disabled on exit.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn mc(seed: u64) -> JobSpec {
    JobSpec::McPoint {
        system: SystemSpec::Vab { n_pairs: 4 },
        env: EnvSpec::River,
        range_m: 40.0,
        rotation_deg: 0.0,
        trials: 4,
        bits: 64,
        seed,
        engine: EngineSpec::LinkBudget,
    }
}

fn start_server(workers: usize, telemetry_ms: u64) -> Server {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        pool: PoolConfig { workers, queue_cap: 64, retry_after_ms: 25 },
        telemetry_interval_ms: telemetry_ms,
        ..ServerConfig::default()
    };
    Server::start(cfg, Executor::new(), Arc::new(ResultCache::in_memory(64)))
        .expect("bind localhost")
}

/// Runs `jobs` through a fresh traced daemon with `workers` workers;
/// returns the JSONL trace path. The caller holds the obs lock.
fn run_traced(tag: &str, workers: usize, jobs: &[JobSpec]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vab-tracing-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("{tag}.jsonl"));
    vab::obs::metrics::reset();
    vab::obs::install(Arc::new(JsonlSink::create(&path).expect("sink")));
    let mut server = start_server(workers, 0);
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    for job in jobs {
        let resp = client.submit(job, None).expect("submit");
        let id = resp.str_field("id").expect("id").to_string();
        loop {
            let r = client.fetch_wait(&id, 30_000).expect("fetch");
            match r.str_field("status") {
                Some("queued") | Some("running") => continue,
                Some("done") => break,
                other => panic!("job {id} ended as {other:?}"),
            }
        }
    }
    server.shutdown();
    vab::obs::flush();
    vab::obs::disable();
    vab::obs::metrics::reset();
    path
}

#[test]
fn span_set_is_bit_identical_across_worker_counts() {
    let _g = obs_lock();
    vab::obs::disable();
    let jobs: Vec<JobSpec> = [11, 22, 33].iter().map(|&s| mc(s)).collect();
    let one = run_traced("workers-1", 1, &jobs);
    let eight = run_traced("workers-8", 8, &jobs);
    let trace_1 = Trace::load(&one).expect("trace 1");
    let trace_8 = Trace::load(&eight).expect("trace 8");
    for job in &jobs {
        let digest = job.digest();
        let set_1 = Waterfall::from_trace(&trace_1, digest).canonical_set();
        let set_8 = Waterfall::from_trace(&trace_8, digest).canonical_set();
        assert!(!set_1.is_empty(), "job {digest:016x} produced no spans");
        assert_eq!(set_1, set_8, "span set for job {digest:016x} must not depend on worker count");
        for name in [
            "svc.submit",
            "svc.handle",
            "svc.cache_lookup",
            "svc.queue_wait",
            "svc.job_execute",
            "svc.cache_persist",
        ] {
            assert!(
                set_1.iter().any(|l| l.starts_with(&format!("{name} "))),
                "job {digest:016x} lacks a {name} span: {set_1:?}"
            );
        }
    }
}

#[test]
fn waterfall_reconstructs_one_job_as_a_single_tree() {
    let _g = obs_lock();
    vab::obs::disable();
    let job = mc(77);
    let digest = job.digest();
    let path = run_traced("waterfall", 2, std::slice::from_ref(&job));

    // Split the capture into a "client file" and a "daemon file" the way
    // two processes would have written them, then merge — the exact
    // `vab-obsctl trace` flow.
    let text = std::fs::read_to_string(&path).expect("read trace");
    let (client_lines, daemon_lines): (Vec<&str>, Vec<&str>) =
        text.lines().partition(|l| l.contains("\"target\":\"svc.client\""));
    let merged = Trace::merge([
        ("client", Trace::parse(&client_lines.join("\n"))),
        ("daemon", Trace::parse(&daemon_lines.join("\n"))),
    ]);
    let w = Waterfall::from_trace(&merged, digest);

    // The tree matches the derived identities exactly: submit roots it
    // (its parent is the never-emitted anchor), handle sits under
    // submit, the three admission/executor spans under handle, persist
    // under execute.
    let submit = TraceContext::root(digest, "job").child("svc.submit", 0);
    let handle = submit.child("svc.handle", 0);
    let execute = handle.child("svc.job_execute", 0);
    assert_eq!(w.roots(), vec![submit.span_id], "submit must root the tree");
    assert_eq!(w.children_of(submit.span_id), vec![handle.span_id]);
    let mut expected = vec![
        handle.child("svc.cache_lookup", 0).span_id,
        execute.span_id,
        handle.child("svc.queue_wait", 0).span_id,
    ];
    expected.sort_unstable_by_key(|id| {
        // children_of sorts by (name, id); rebuild that order here.
        w.spans.get(id).map(|s| (s.name.clone(), s.id)).expect("span present")
    });
    assert_eq!(w.children_of(handle.span_id), expected);
    assert_eq!(w.children_of(execute.span_id), vec![execute.child("svc.cache_persist", 0).span_id]);
    assert_eq!(w.spans.len(), 6, "exactly one tree, no strays: {:?}", w.canonical_set());

    // Cross-process bookkeeping: the submit span came from the "client"
    // file, everything else from the "daemon" file.
    assert_eq!(w.spans[&submit.span_id].sources, vec!["client".to_string()]);
    assert_eq!(w.spans[&execute.span_id].sources, vec!["daemon".to_string()]);

    // The critical path (duration-only, skew-immune) starts at submit
    // and must pass through the execute span — the physics dominates.
    let critical = w.critical_path(submit.span_id);
    assert_eq!(critical[0], submit.span_id);
    assert!(critical.contains(&execute.span_id), "critical path misses execute: {critical:?}");
    let rendered = w.render();
    assert!(rendered.contains("svc.cache_persist"), "render: {rendered}");
}

#[test]
fn metrics_and_watch_ops_serve_live_samples() {
    // No tracing needed: telemetry pool/cache counters work with obs off.
    let mut server = start_server(2, 25);
    let mut client = Client::connect(&server.addr().to_string()).expect("connect");
    let resp = client.submit(&mc(5), None).expect("submit");
    let id = resp.str_field("id").expect("id").to_string();
    loop {
        let r = client.fetch_wait(&id, 30_000).expect("fetch");
        if r.str_field("status") == Some("done") {
            break;
        }
    }
    let sample = client.metrics().expect("metrics op").get("sample").cloned().expect("sample");
    assert_eq!(sample.str_field("schema"), Some("vab-svc-telemetry/1"));
    assert!(sample.u64_field("jobs_done").unwrap_or(0) >= 1, "sample: {}", sample.render());
    assert!(sample.get("cache").is_some());

    // The background sampler populates the ring; watch returns the
    // backlog with monotone ticks and a resumable `latest`.
    std::thread::sleep(Duration::from_millis(120));
    let watch = client.watch(0).expect("watch op");
    let latest = watch.u64_field("latest").expect("latest");
    let samples = watch.get("samples").and_then(|s| s.as_arr().map(|v| v.len())).unwrap_or(0);
    assert!(latest >= 1 && samples >= 1, "watch: {}", watch.render());
    let again = client.watch(latest).expect("watch since latest");
    let newer = again.get("samples").and_then(|s| s.as_arr().map(|v| v.len())).unwrap_or(0);
    assert!(
        newer <= samples,
        "watch since latest must only return fresh ticks ({newer} vs {samples})"
    );
    server.shutdown();
}

#[test]
fn control_ops_draw_per_request_fault_identities() {
    // A chaos plan aggressive enough that shared-identity control ops
    // would fate-share: with per-request identity, a run of stats
    // requests sees *both* clean deliveries and injected faults.
    let plan = SvcFaultPlan::new(5, SvcFaultConfig::with_intensity(0.9));
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        pool: PoolConfig { workers: 1, queue_cap: 8, retry_after_ms: 25 },
        faults: Some(plan),
        telemetry_interval_ms: 0,
        ..ServerConfig::default()
    };
    let mut server = Server::start(cfg, Executor::new(), Arc::new(ResultCache::in_memory(8)))
        .expect("bind localhost");
    let addr = server.addr().to_string();
    let mut ok = 0;
    let mut failed = 0;
    for _ in 0..40 {
        // Fresh connection per request: a faulted delivery (drop or
        // truncation) kills the connection, and that must never bleed
        // into the next request's fate.
        let mut client = Client::connect(&addr).expect("connect");
        match client.stats() {
            Ok(resp) => {
                assert_eq!(resp.bool_field("ok"), Some(true));
                ok += 1;
            }
            Err(_) => failed += 1,
        }
    }
    let totals = server.wire_fault_totals();
    assert!(
        ok > 0,
        "per-request identities must let some stats through (ok={ok}, failed={failed}, {totals:?})"
    );
    assert!(
        totals.drops + totals.truncates + totals.corrupts > 0,
        "the plan at intensity 0.9 must fault at least one control delivery"
    );
    // Health stays exempt no matter what.
    let mut client = Client::connect(&addr).expect("connect");
    for _ in 0..5 {
        assert!(client.health().is_ok(), "health probes must never be faulted");
    }
    server.shutdown();
}
