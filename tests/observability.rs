//! Observability integration: instrumentation must be invisible to the
//! physics (bit-identical results, any thread count) while a faulted
//! workload under a JSONL sink yields the full cross-layer event record
//! the PR promises — fault activations, rate changes, ARQ retries,
//! brownouts — plus a metrics snapshot with per-stage timing.

use std::sync::{Arc, Mutex, OnceLock};

use vab::fault::{FaultConfig, FaultPlan};
use vab::obs::sink::JsonlSink;
use vab::sim::baseline::SystemKind;
use vab::sim::campaign::{run_campaign, CampaignConfig};
use vab::sim::montecarlo::{run_point_faulted, MonteCarloConfig, TrialEngine};
use vab::sim::scenario::Scenario;
use vab::util::units::Meters;
use vab_bench::experiments::{f19_fault_sweep, ExpConfig};

/// The obs sink and registry are process-global; tests in this binary run
/// on parallel threads, so every test takes this lock and leaves obs
/// disabled on exit.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn faulted_mc(threads: usize) -> MonteCarloConfig {
    MonteCarloConfig {
        trials: 96,
        bits_per_trial: 256,
        seed: 77,
        engine: TrialEngine::LinkBudget,
        threads,
    }
}

/// Bit-exact outcome of a faulted point. Eb/N0 means are excluded: shard
/// merge order changes float summation (1 thread vs 8) independently of
/// observability, while error counts are exact integers.
fn faulted_point(threads: usize) -> (u64, u64, Vec<u64>) {
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(260.0));
    let plan = FaultPlan::new(77, FaultConfig::with_intensity(0.6));
    let r = run_point_faulted(&s, &faulted_mc(threads), &plan);
    let per_trial: Vec<u64> = r.trial_bers.iter().map(|b| (b * 256.0).round() as u64).collect();
    (r.ber.errors(), r.packet_errors, per_trial)
}

#[test]
fn instrumentation_is_bit_identical_across_sinks_and_threads() {
    let _g = obs_lock();
    vab::obs::disable();
    vab::obs::metrics::reset();
    let baseline_1t = faulted_point(1);
    let baseline_8t = faulted_point(8);
    assert_eq!(baseline_1t, baseline_8t, "faulted point must not depend on thread count");

    let dir = std::env::temp_dir().join("vab_obs_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("determinism.jsonl");
    vab::obs::install(Arc::new(JsonlSink::create(&path).expect("sink")));
    let traced_1t = faulted_point(1);
    let traced_8t = faulted_point(8);
    vab::obs::disable();

    assert_eq!(baseline_1t, traced_1t, "tracing must not perturb the physics");
    assert_eq!(baseline_1t, traced_8t, "tracing must stay thread-count independent");
}

#[test]
fn faulted_workload_trace_has_all_event_families_and_stage_metrics() {
    let _g = obs_lock();
    vab::obs::disable();
    vab::obs::metrics::reset();
    let dir = std::env::temp_dir().join("vab_obs_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("faulted.jsonl");
    vab::obs::install(Arc::new(JsonlSink::create(&path).expect("sink")));

    // A faulted campaign (deployment-level events) plus the F19 protocol
    // loop (MAC/ARQ events) — together the cross-layer workload the
    // acceptance trace describes.
    let campaign = CampaignConfig {
        n_trials: 150,
        faults: Some(FaultConfig::with_intensity(0.6)),
        ..CampaignConfig::vab_default()
    };
    let report = run_campaign(&campaign);
    assert_eq!(report.records.len(), 150);
    let table = f19_fault_sweep(&ExpConfig::quick());
    assert!(!table.is_empty());

    vab::obs::flush();
    vab::obs::disable();

    let trace = std::fs::read_to_string(&path).expect("trace");
    let mut parsed = 0usize;
    for line in trace.lines() {
        assert!(
            line.starts_with("{\"seq\":") && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
        for key in ["\"t_us\":", "\"target\":", "\"event\":", "\"fields\":"] {
            assert!(line.contains(key), "line missing {key}: {line}");
        }
        parsed += 1;
    }
    assert!(parsed > 200, "expected a substantial trace, got {parsed} lines");
    for event in
        ["\"fault_activated\"", "\"rate_change\"", "\"retransmit\"", "\"brownout_truncated_reply\""]
    {
        assert!(trace.contains(event), "trace lacks {event}");
    }
    assert!(trace.contains("\"deployment_done\""), "campaign events missing");

    let snap = vab::obs::metrics::Snapshot::capture();
    assert!(
        snap.counters.iter().any(|(n, v)| n == "fault.activations" && *v > 0),
        "fault.activations counter missing: {:?}",
        snap.counters
    );
    assert!(
        snap.counters.iter().any(|(n, v)| n == "arq.retransmits" && *v > 0),
        "arq.retransmits counter missing"
    );
    let stages: Vec<&str> = snap.stages.iter().map(|h| h.name.as_str()).collect();
    assert!(
        stages.contains(&"sim.linkbudget_trial"),
        "stage histograms missing linkbudget trial: {stages:?}"
    );
    for h in &snap.stages {
        assert_eq!(h.buckets.len(), h.bounds.len() + 1);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count, "{} bucket sum", h.name);
    }
    let json = snap.to_json();
    assert!(json.contains("\"stages\""));
    let summary = snap.stage_summary().expect("stage summary");
    assert!(summary.contains("sim.linkbudget_trial"));
}

#[test]
fn disabled_observability_skips_sink_and_registry() {
    let _g = obs_lock();
    vab::obs::disable();
    vab::obs::metrics::reset();
    let _ = faulted_point(1);
    // Span sites must be equally silent: a scope entered while disabled
    // records nothing (one relaxed atomic, no Instant, no id derivation),
    // and the cross-thread begin/end functions are no-ops.
    let root = vab::obs::TraceContext::root(0xd15a_b1ed, "job");
    {
        let scope = vab::obs::SpanScope::enter("svc.test", "svc.disabled_probe", &root);
        assert!(!scope.is_recording(), "disabled scope must not record");
        assert_eq!(scope.ctx(), root, "disabled scope echoes its parent context");
    }
    vab::obs::span_begin("svc.test", "svc.disabled_probe", &root);
    vab::obs::span_end(
        "svc.test",
        "svc.disabled_probe",
        &root,
        std::time::Duration::from_millis(3),
    );
    let snap = vab::obs::metrics::Snapshot::capture();
    assert!(
        snap.counters.iter().all(|(_, v)| *v == 0),
        "counters must stay silent when disabled: {:?}",
        snap.counters
    );
    assert!(
        snap.stages.iter().all(|h| h.count == 0),
        "stage timers and span scopes must stay silent when disabled: {:?}",
        snap.stages.iter().filter(|h| h.count > 0).map(|h| &h.name).collect::<Vec<_>>()
    );
    // The allocation profiler must be equally silent when off: the global
    // allocator's fast path is one relaxed load, so a profiling-off
    // workload leaves every alloc counter at zero and attributes nothing
    // to any stage.
    assert!(!vab::obs::alloc::profiling(), "VAB_PROFILE must not leak into this test");
    vab::obs::alloc::reset();
    let _ = faulted_point(2);
    let totals = vab::obs::alloc::totals();
    assert_eq!(
        (totals.allocs, totals.frees, totals.bytes_allocated, totals.peak_live_bytes),
        (0, 0, 0, 0),
        "alloc counters must stay silent when profiling is off: {totals:?}"
    );
    assert!(
        vab::obs::alloc::snapshot_stages().iter().all(|s| s.calls == 0 && s.cum_allocs == 0),
        "no stage may record allocations while profiling is off"
    );
    assert!(snap.alloc_totals.is_none(), "metrics snapshots must omit the alloc section");
}
