//! Analysis-layer integration: the committed golden fixtures (generated
//! by `examples/gen_golden_trace.rs` from a real faulted workload) must
//! round-trip through the `vab-obsctl` library — trace reconstruction,
//! anomaly detection, and the two-run diff — with the planted
//! cross-layer signatures all recovered.

use std::path::Path;

use vab_obsctl::anomaly::{self, AnomalyConfig, AnomalyKind};
use vab_obsctl::diff::{self, DiffConfig};
use vab_obsctl::report::trial_timelines;
use vab_obsctl::trace::{MetricsDoc, Trace};

fn fixture(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn golden() -> Trace {
    Trace::load(&fixture("golden_trace.jsonl")).expect("golden trace parses")
}

#[test]
fn golden_trace_parses_clean_and_in_seq_order() {
    let trace = golden();
    assert!(trace.events.len() > 200, "fixture too small: {}", trace.events.len());
    assert!(!trace.truncated_tail, "committed fixture must be complete");
    assert!(trace.skipped_lines.is_empty(), "skipped: {:?}", trace.skipped_lines);
    // The JSONL sink shards its buffers, so on-disk order is arbitrary;
    // the parser must hand back seq order.
    assert!(trace.events.windows(2).all(|w| w[0].seq <= w[1].seq), "events not seq-sorted");
}

#[test]
fn golden_trace_covers_every_layer() {
    let trace = golden();
    let families = trace.family_counts();
    for family in [
        "fault.plan.fault_activated",
        "sim.campaign.deployment_done",
        "sim.session.exchange_done",
        "link.arq.retransmit",
        "mac.rate_adapt.rate_change",
        "mac.inventory.node_silent",
        "mac.inventory.reinventory",
        "harvest.pmu.brownout",
    ] {
        assert!(
            families.iter().any(|(f, n)| f == family && *n > 0),
            "fixture lacks {family}; families: {families:?}"
        );
    }
}

#[test]
fn timelines_reconstruct_the_faulted_campaign() {
    let trace = golden();
    let trials = trial_timelines(&trace);
    assert_eq!(trials.len(), 48, "one timeline per campaign deployment");
    assert!(trials.iter().all(|t| t.faulted), "every trial ran under a fault plan");
    assert!(trials.iter().all(|t| t.success.is_some()), "deployment outcomes recorded");
    let successes = trials.iter().filter(|t| t.success == Some(true)).count();
    assert!(
        (1..48).contains(&successes),
        "faulted campaign should be mixed, got {successes}/48 successes"
    );
}

#[test]
fn all_four_anomaly_classes_are_detected() {
    let trace = golden();
    let found = anomaly::scan(&trace, &AnomalyConfig::default());
    for kind in [
        AnomalyKind::BerSpike,
        AnomalyKind::RetransmitStorm,
        AnomalyKind::BrownoutCascade,
        AnomalyKind::SilenceBurst,
    ] {
        assert!(
            found.iter().any(|a| a.kind == kind),
            "generator planted a {kind:?} but the scan missed it; found: {found:?}"
        );
    }
}

#[test]
fn metrics_snapshot_quantiles_are_ordered() {
    let m = MetricsDoc::load(&fixture("golden_metrics.json")).expect("metrics parse");
    let active: Vec<_> = m.stages.iter().filter(|h| h.count > 0).collect();
    assert!(!active.is_empty(), "fixture has no stage observations");
    for h in active {
        let (p50, p95, p99) = (
            h.percentile(0.50).expect("p50"),
            h.percentile(0.95).expect("p95"),
            h.percentile(0.99).expect("p99"),
        );
        assert!(p50 <= p95 && p95 <= p99, "{}: {p50} {p95} {p99}", h.name);
        assert!(p50 > 0.0, "{}: degenerate p50", h.name);
    }
}

#[test]
fn doubled_stage_times_regress_the_diff() {
    let a = MetricsDoc::load(&fixture("golden_metrics.json")).expect("golden");
    let b = MetricsDoc::load(&fixture("regressed_metrics.json")).expect("regressed");
    let cfg = DiffConfig::default();
    assert_eq!(diff::diff(&a, &a, &cfg).regressions(), 0, "self-diff must be clean");
    let r = diff::diff(&a, &b, &cfg);
    assert!(r.regressions() >= 1, "2x stage times must regress:\n{}", r.render());
    // And the reverse direction is an improvement, not a regression.
    assert_eq!(diff::diff(&b, &a, &cfg).regressions(), 0);
}
