//! `vab-net` determinism regressions and capture-model properties.
//!
//! The headline guarantee: FN1/FN2 CSVs are bit-identical whatever the
//! worker-pool width, because each deployment is internally single-threaded
//! and seed-pure — parallelism only shards *across* topologies.

use std::sync::Arc;

use proptest::prelude::*;
use vab::net::{jain_fairness, sinr_db, CaptureModel, NetworkSpec, Topology};
use vab::svc::ResultCache;
use vab::util::threads::set_jobs;
use vab_bench::network::{fn1_with_cache, fn2_with_cache};
use vab_bench::ExpConfig;

fn quick() -> ExpConfig {
    ExpConfig { trials: 4, bits: 64, seed: 2023 }
}

#[test]
fn fn1_fn2_csvs_are_identical_across_pool_widths() {
    // Fresh caches per width so every run actually computes its topologies.
    set_jobs(1);
    let fn1_serial = fn1_with_cache(&quick(), Arc::new(ResultCache::in_memory(64))).to_csv();
    let fn2_serial = fn2_with_cache(&quick(), Arc::new(ResultCache::in_memory(64))).to_csv();
    set_jobs(8);
    let fn1_wide = fn1_with_cache(&quick(), Arc::new(ResultCache::in_memory(64))).to_csv();
    let fn2_wide = fn2_with_cache(&quick(), Arc::new(ResultCache::in_memory(64))).to_csv();
    set_jobs(0);
    assert_eq!(fn1_serial, fn1_wide, "FN1 must not depend on worker count");
    assert_eq!(fn2_serial, fn2_wide, "FN2 must not depend on worker count");
}

#[test]
fn topology_digest_pins_placement() {
    let spec = NetworkSpec::river(32, 7);
    let again = NetworkSpec::river(32, 7);
    assert_eq!(spec.digest(), again.digest());
    let a = Topology::generate(&spec);
    let b = Topology::generate(&again);
    assert_eq!(a.nodes.len(), b.nodes.len());
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(x.addr, y.addr);
        assert_eq!(x.pos, y.pos);
    }
    // A different seed is a different address.
    assert_ne!(spec.digest(), NetworkSpec::river(32, 8).digest());
}

proptest! {
    // The capture winner is always the strongest respondent, and moving
    // any respondent closer (raising its power) can only improve its own
    // SINR — capture is monotone in received power, hence in range.
    #[test]
    fn capture_prefers_the_strongest_and_is_monotone(
        powers in prop::collection::vec(1e-12f64..1e-3, 2..8),
        noise in 1e-13f64..1e-6,
        boost in 1.5f64..100.0,
    ) {
        let model = CaptureModel::default();
        let replies: Vec<(u8, f64)> =
            powers.iter().enumerate().map(|(i, &p)| (i as u8, p)).collect();
        if let Some((winner, _)) = model.capture_candidate(&replies, noise) {
            let strongest = replies
                .iter()
                .copied()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(a, _)| a)
                .unwrap();
            prop_assert_eq!(winner, strongest);
        }

        // Monotonicity: boosting the strongest reply's power (the node
        // moving closer to the reader) never lowers its SINR.
        let idx = powers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let interference: f64 =
            powers.iter().enumerate().filter(|&(i, _)| i != idx).map(|(_, &p)| p).sum();
        let before = sinr_db(powers[idx], interference, noise);
        let after = sinr_db(powers[idx] * boost, interference, noise);
        prop_assert!(after >= before);
    }

    // Jain's index stays in (0, 1] for any non-negative allocation, and
    // hits exactly 1 for perfectly equal shares.
    #[test]
    fn jain_fairness_is_bounded(
        xs in prop::collection::vec(0.0f64..1e6, 0..64),
        equal in 1e-6f64..1e6,
        n in 1usize..64,
    ) {
        let j = jain_fairness(&xs);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "jain out of range: {j}");
        let uniform = vec![equal; n];
        prop_assert!((jain_fairness(&uniform) - 1.0).abs() < 1e-9);
    }
}
