//! `vab-net` determinism regressions and capture-model properties.
//!
//! The headline guarantees: FN1/FN2/FN3 CSVs are bit-identical whatever
//! the worker-pool width, because each deployment is internally
//! single-threaded and seed-pure — parallelism only shards *across*
//! deployments; and the scale tier's grid-accelerated interference sum is
//! bit-identical to the pairwise reference below the horizon.

use std::sync::Arc;

use proptest::prelude::*;
use vab::acoustics::environment::{Environment, SeaState};
use vab::acoustics::geometry::Position;
use vab::net::{
    grid_interference_lin, jain_fairness, pairwise_interference_lin, run_deployment, sinr_db,
    CaptureModel, NetworkSpec, PointSource, SpatialGrid, Topology,
};
use vab::svc::ResultCache;
use vab::util::hash::fnv1a64;
use vab::util::threads::set_jobs;
use vab::util::units::Hertz;
use vab_bench::network::{fn1_with_cache, fn2_with_cache, fn3_with_cache};
use vab_bench::ExpConfig;

fn quick() -> ExpConfig {
    ExpConfig { trials: 4, bits: 64, seed: 2023 }
}

#[test]
fn fn1_fn2_csvs_are_identical_across_pool_widths() {
    // Fresh caches per width so every run actually computes its topologies.
    set_jobs(1);
    let fn1_serial = fn1_with_cache(&quick(), Arc::new(ResultCache::in_memory(64))).to_csv();
    let fn2_serial = fn2_with_cache(&quick(), Arc::new(ResultCache::in_memory(64))).to_csv();
    set_jobs(8);
    let fn1_wide = fn1_with_cache(&quick(), Arc::new(ResultCache::in_memory(64))).to_csv();
    let fn2_wide = fn2_with_cache(&quick(), Arc::new(ResultCache::in_memory(64))).to_csv();
    set_jobs(0);
    assert_eq!(fn1_serial, fn1_wide, "FN1 must not depend on worker count");
    assert_eq!(fn2_serial, fn2_wide, "FN2 must not depend on worker count");
}

#[test]
fn fn3_csv_is_identical_across_pool_widths() {
    set_jobs(1);
    let serial = fn3_with_cache(&quick(), Arc::new(ResultCache::in_memory(64))).to_csv();
    set_jobs(8);
    let wide = fn3_with_cache(&quick(), Arc::new(ResultCache::in_memory(64))).to_csv();
    set_jobs(0);
    assert_eq!(serial, wide, "FN3 must not depend on worker count");
}

/// FN1 physics must survive the scale-tier refactor untouched: the quick
/// CSV is pinned byte-for-byte against a fixture generated *before* the
/// grid/route/scale layers landed. Regenerate only for a deliberate
/// physics change (see `EXPERIMENTS.md`).
#[test]
fn fn1_quick_csv_matches_the_pre_scale_golden() {
    // The fixture was generated at `ExpConfig::quick()` fidelity.
    let csv = fn1_with_cache(&ExpConfig::quick(), Arc::new(ResultCache::in_memory(64))).to_csv();
    let golden = include_str!("fixtures/fn1_quick_golden.csv");
    assert_eq!(csv, golden, "FN1 quick CSV drifted from the pre-scale-tier golden fixture");
}

/// Pre-widening topology specs keep their content addresses and reports:
/// widening `Addr` to `u32` and removing the 256-node cap must not move
/// a single byte of the historical ≤256-node results.
#[test]
fn pre_widening_specs_keep_digests_and_reports() {
    for (spec, want) in [
        (NetworkSpec::river(16, 7), 0x436e_9d3f_90f5_ac92_u64),
        (NetworkSpec::river(64, 42), 0x0804_b87c_305c_d0b2),
        (NetworkSpec::river(256, 2023), 0x5549_5bbb_49e3_1ffc),
    ] {
        assert_eq!(
            spec.digest(),
            want,
            "digest of river({}, {}) moved — placement or canonical form changed",
            spec.n_nodes,
            spec.seed
        );
    }
    let report = run_deployment(&NetworkSpec::river(64, 42)).to_json().render();
    assert_eq!(
        fnv1a64(report.as_bytes()),
        0x1945_7140_5e6d_7ed6,
        "river(64, 42) deployment report drifted from the pre-scale-tier bytes"
    );
}

/// The BENCH acceptance target for the scale tier: at N = 4096 in a
/// km-scale box, grid-accelerated interference aggregation beats the
/// pairwise reference by ≥ 10×. Gated behind `VAB_BENCH=1` because
/// wall-clock assertions have no place in the default suite (run it
/// `--release`; see `SCALING.md` for measured numbers).
#[test]
fn grid_aggregation_meets_the_bench_speedup_target() {
    if std::env::var("VAB_BENCH").is_err() {
        eprintln!("skipped: set VAB_BENCH=1 to run the speedup gate");
        return;
    }
    use std::time::Instant;
    use vab::util::rng::seeded;

    let env = Environment::ocean(SeaState::all()[1]);
    let f = Hertz(18_500.0);
    let n = 4096usize;
    let extent = 4_000.0; // km-scale box: most pairs sit far outside the horizon
    let mut rng = seeded(0xB0B);
    use rand::RngExt;
    let sources: Vec<PointSource> = (0..n)
        .map(|i| PointSource {
            addr: i as u32,
            pos: Position::new(
                rng.random::<f64>() * extent,
                rng.random::<f64>() * extent,
                1.0 + rng.random::<f64>() * 8.0,
            ),
            level_db_at_1m: 130.0,
        })
        .collect();
    let horizon_m = 300.0;
    let points: Vec<Position> = sources.iter().map(|s| s.pos).collect();
    let grid = SpatialGrid::build(&points, horizon_m / 2.0);
    let best = |f: &mut dyn FnMut() -> f64| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                let total = f();
                assert!(total >= 0.0);
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let pairwise = best(&mut || {
        sources
            .iter()
            .map(|s| pairwise_interference_lin(&env, f, &sources, s.pos, Some(s.addr)))
            .sum()
    });
    let accelerated = best(&mut || {
        sources
            .iter()
            .map(|s| {
                grid_interference_lin(&env, f, &sources, &grid, s.pos, horizon_m, Some(s.addr))
            })
            .sum()
    });
    let speedup = pairwise / accelerated.max(1e-12);
    eprintln!(
        "grid speedup at N={n}: {speedup:.1}x (pairwise {pairwise:.3}s, grid {accelerated:.3}s)"
    );
    assert!(speedup >= 10.0, "need >=10x, measured {speedup:.1}x");
}

#[test]
fn topology_digest_pins_placement() {
    let spec = NetworkSpec::river(32, 7);
    let again = NetworkSpec::river(32, 7);
    assert_eq!(spec.digest(), again.digest());
    let a = Topology::generate(&spec);
    let b = Topology::generate(&again);
    assert_eq!(a.nodes.len(), b.nodes.len());
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(x.addr, y.addr);
        assert_eq!(x.pos, y.pos);
    }
    // A different seed is a different address.
    assert_ne!(spec.digest(), NetworkSpec::river(32, 8).digest());
}

proptest! {
    // The capture winner is always the strongest respondent, and moving
    // any respondent closer (raising its power) can only improve its own
    // SINR — capture is monotone in received power, hence in range.
    #[test]
    fn capture_prefers_the_strongest_and_is_monotone(
        powers in prop::collection::vec(1e-12f64..1e-3, 2..8),
        noise in 1e-13f64..1e-6,
        boost in 1.5f64..100.0,
    ) {
        let model = CaptureModel::default();
        let replies: Vec<(u32, f64)> =
            powers.iter().enumerate().map(|(i, &p)| (i as u32, p)).collect();
        if let Some((winner, _)) = model.capture_candidate(&replies, noise) {
            let strongest = replies
                .iter()
                .copied()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(a, _)| a)
                .unwrap();
            prop_assert_eq!(winner, strongest);
        }

        // Monotonicity: boosting the strongest reply's power (the node
        // moving closer to the reader) never lowers its SINR.
        let idx = powers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let interference: f64 =
            powers.iter().enumerate().filter(|&(i, _)| i != idx).map(|(_, &p)| p).sum();
        let before = sinr_db(powers[idx], interference, noise);
        let after = sinr_db(powers[idx] * boost, interference, noise);
        prop_assert!(after >= before);
    }

    // The scale tier's exactness contract: whenever every source lies
    // within the horizon, the grid-accelerated interference sum is
    // bit-identical to the pairwise reference — same contribution
    // function, same ascending-index summation order, floating point and
    // all. FN1-tier physics therefore cannot drift under acceleration.
    #[test]
    fn grid_interference_is_bit_identical_to_pairwise_below_the_horizon(
        n in 2usize..40,
        xs in prop::collection::vec(0.0f64..300.0, 40),
        ys in prop::collection::vec(0.0f64..300.0, 40),
        zs in prop::collection::vec(1.0f64..9.0, 40),
        levels in prop::collection::vec(110.0f64..150.0, 40),
        px in 0.0f64..300.0,
        py in 0.0f64..300.0,
        pz in 1.0f64..9.0,
        cell_m in 10.0f64..200.0,
        exclude_raw in 0u32..80,
    ) {
        let env = Environment::ocean(SeaState::all()[1]);
        let f = Hertz(18_500.0);
        let sources: Vec<PointSource> = (0..n)
            .map(|i| PointSource {
                addr: i as u32,
                pos: Position::new(xs[i], ys[i], zs[i]),
                level_db_at_1m: levels[i],
            })
            .collect();
        // Half the draws exclude one source's own reply, half exclude none.
        let exclude = (exclude_raw < n as u32).then_some(exclude_raw);
        let points: Vec<Position> = sources.iter().map(|s| s.pos).collect();
        let grid = SpatialGrid::build(&points, cell_m);
        let at = Position::new(px, py, pz);
        // Any horizon covering the whole box: the diagonal plus slack.
        let horizon_m = 600.0;
        let a = pairwise_interference_lin(&env, f, &sources, at, exclude);
        let b = grid_interference_lin(&env, f, &sources, &grid, at, horizon_m, exclude);
        prop_assert_eq!(a.to_bits(), b.to_bits(),
            "grid and pairwise sums must be bit-identical below the horizon");
    }

    // Jain's index stays in (0, 1] for any non-negative allocation, and
    // hits exactly 1 for perfectly equal shares.
    #[test]
    fn jain_fairness_is_bounded(
        xs in prop::collection::vec(0.0f64..1e6, 0..64),
        equal in 1e-6f64..1e6,
        n in 1usize..64,
    ) {
        let j = jain_fairness(&xs);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "jain out of range: {j}");
        let uniform = vec![equal; n];
        prop_assert!((jain_fairness(&uniform) - 1.0).abs() < 1e-9);
    }
}
