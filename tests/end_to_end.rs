//! Whole-stack integration tests: the paper's claims exercised through the
//! public API of the umbrella crate.

use vab::sim::baseline::SystemKind;
use vab::sim::linkbudget::LinkBudget;
use vab::sim::montecarlo::{run_point, MonteCarloConfig, TrialEngine};
use vab::sim::scenario::Scenario;
use vab::util::units::{Degrees, Meters};

fn mc(trials: usize, engine: TrialEngine) -> MonteCarloConfig {
    MonteCarloConfig { trials, bits_per_trial: 256, seed: 99, engine, threads: 0 }
}

#[test]
fn headline_300m_river_at_ber_1e3() {
    // The abstract: "communication range that exceeds 300 m ... at BER 10⁻³".
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(300.0));
    let r = run_point(&s, &mc(80, TrialEngine::LinkBudget));
    assert!(r.median_ber() <= 1e-3, "median BER at 300 m = {:.2e}", r.median_ber());
}

#[test]
fn order_of_magnitude_over_prior_art() {
    // The 15× claim, at reduced fidelity: VAB must reach ≥ 8× PAB's range.
    let target = 1e-3;
    let cfg = mc(40, TrialEngine::LinkBudget);
    let range_of = |sys: SystemKind| -> f64 {
        let ok = |d: f64| run_point(&Scenario::river(sys, Meters(d)), &cfg).median_ber() <= target;
        let (mut lo, mut hi) = (2.0, 2000.0);
        if !ok(lo) {
            return 0.0;
        }
        for _ in 0..10 {
            let mid = 0.5 * (lo + hi);
            if ok(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    let vab = range_of(SystemKind::Vab { n_pairs: 4 });
    let pab = range_of(SystemKind::Pab);
    assert!(pab > 5.0, "PAB range {pab}");
    assert!(vab / pab > 8.0, "VAB {vab} m vs PAB {pab} m — only {:.1}×", vab / pab);
}

#[test]
fn retrodirectivity_across_orientations() {
    // "...across orientations": VAB at 45° barely degrades; the
    // conventional array at 45° falls apart at the same range.
    let cfg = mc(40, TrialEngine::LinkBudget);
    let at = |sys: SystemKind, deg: f64| {
        let s = Scenario::river(sys, Meters(150.0)).with_rotation(Degrees(deg));
        run_point(&s, &cfg)
    };
    let vab = at(SystemKind::Vab { n_pairs: 4 }, 45.0);
    let conv = at(SystemKind::ConventionalArray { n_elements: 8 }, 45.0);
    assert!(vab.ber.ber() < 1e-3, "VAB rotated BER {:.2e}", vab.ber.ber());
    assert!(conv.ber.ber() > 1e-2, "conventional rotated BER {:.2e}", conv.ber.ber());
}

#[test]
fn engines_agree_in_the_clean_regime() {
    // The fast sonar-equation engine and the honest waveform engine must
    // both report error-free operation at comfortable margins...
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(120.0));
    let fast = run_point(&s, &mc(6, TrialEngine::LinkBudget));
    let slow = run_point(&s, &mc(6, TrialEngine::SampleLevel));
    assert_eq!(fast.ber.errors(), 0);
    assert_eq!(slow.ber.errors(), 0);
}

#[test]
fn engines_agree_in_the_hopeless_regime() {
    // ...and both report failure far past the budget.
    let s = Scenario::river(SystemKind::Pab, Meters(3_000.0));
    let fast = run_point(&s, &mc(6, TrialEngine::LinkBudget));
    let slow = run_point(&s, &mc(4, TrialEngine::SampleLevel));
    assert!(fast.ber.ber() > 0.2, "fast {:.2}", fast.ber.ber());
    assert!(slow.ber.ber() > 0.2, "slow {:.2}", slow.ber.ber());
}

#[test]
fn budget_predicts_monte_carlo_snr() {
    // The Monte Carlo's mean Eb/N0 must sit within a few dB of the static
    // budget (the difference is the retro multipath bonus).
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(200.0));
    let b = LinkBudget::compute(&s);
    let r = run_point(&s, &mc(60, TrialEngine::LinkBudget));
    let delta = r.ebn0.mean() - b.ebn0_db;
    assert!(delta > 0.0 && delta < 8.0, "multipath bonus {delta} dB out of range");
}

#[test]
fn throughput_range_tradeoff_is_monotone() {
    // At a fixed range, raising the bit rate can only hurt BER.
    let cfg = mc(40, TrialEngine::LinkBudget);
    let mut prev = -1.0;
    for bps in [100.0, 250.0, 500.0, 1000.0] {
        let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(260.0)).with_bit_rate(bps);
        let ber = run_point(&s, &cfg).ber.ber();
        assert!(ber >= prev, "BER fell from {prev} to {ber} at {bps} bps");
        prev = ber;
    }
}

#[test]
fn more_pairs_more_range() {
    let cfg = mc(30, TrialEngine::LinkBudget);
    let ber_at = |pairs: usize| {
        let s = Scenario::river(SystemKind::Vab { n_pairs: pairs }, Meters(320.0));
        run_point(&s, &cfg).ber.ber()
    };
    let small = ber_at(1);
    let large = ber_at(8);
    assert!(large < small, "8 pairs ({large:.2e}) must beat 1 pair ({small:.2e}) at 320 m");
}

#[test]
fn ocean_deployment_works_at_100m() {
    use vab::acoustics::environment::SeaState;
    let s = Scenario::ocean(SystemKind::Vab { n_pairs: 4 }, Meters(100.0), SeaState::Smooth);
    let r = run_point(&s, &mc(40, TrialEngine::LinkBudget));
    assert!(r.median_ber() <= 1e-3, "ocean 100 m BER {:.2e}", r.median_ber());
}
