//! Replay-substrate integration tests: bank digest stability, FR1 figure
//! determinism across worker counts, cache-served bank builds through the
//! daemon (including across a daemon restart), and the BENCH-gated
//! overlap-save speedup target.

use std::path::PathBuf;
use std::sync::Arc;

use vab::svc::cache::ResultCache;
use vab::svc::client::Client;
use vab::svc::exec::Executor;
use vab::svc::job::{EnvSpec, JobSpec};
use vab::svc::pool::PoolConfig;
use vab::svc::server::{Server, ServerConfig};
use vab_bench::experiments::{self, ExpConfig};
use vab_replay::{BankSpec, BankStore, WaterSpec, ENGINE_VERSION};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vab-replay-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn river_spec() -> BankSpec {
    BankSpec {
        water: WaterSpec::River,
        range_m: 300.0,
        carrier_hz: 18_500.0,
        fs: 1600.0,
        n_snapshots: 4,
        span_s: 2.0,
        seed: 2023,
    }
}

#[test]
fn bank_digest_is_stable_across_runs_and_sensitive_to_the_spec() {
    let store = BankStore::new("unused-dir", ENGINE_VERSION);
    let spec = river_spec();
    // The content address is a pure function of (canonical spec, engine
    // version): any change to the canonical encoding is a breaking format
    // change and must show up here.
    assert_eq!(store.id_for(&spec), "e14989b3380dcd69");
    assert_eq!(store.id_for(&spec), store.id_for(&spec.clone()));
    // Every spec field re-addresses the bank.
    let mut reseeded = spec.clone();
    reseeded.seed = 2024;
    assert_ne!(store.id_for(&reseeded), store.id_for(&spec));
    let mut moved = spec.clone();
    moved.range_m = 301.0;
    assert_ne!(store.id_for(&moved), store.id_for(&spec));
    // An engine bump orphans every old bank.
    let next = BankStore::new("unused-dir", "vab-engine/next");
    assert_ne!(next.id_for(&spec), store.id_for(&spec));
}

/// FR1's CSV minus its wall-clock columns (`direct_ms`, `fft_ms`,
/// `speedup` — the only legitimately nondeterministic cells).
fn strip_timing_columns(csv: &str) -> String {
    csv.lines()
        .map(|line| {
            let cells: Vec<&str> = line.split(',').collect();
            cells[..cells.len().saturating_sub(3)].join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn fr1_physics_is_bit_identical_across_worker_counts() {
    let cfg = ExpConfig { trials: 10, bits: 128, seed: 7 };
    vab_util::threads::set_jobs(1);
    let serial = strip_timing_columns(&experiments::fr1_replay_validation(&cfg).to_csv());
    vab_util::threads::set_jobs(8);
    let parallel = strip_timing_columns(&experiments::fr1_replay_validation(&cfg).to_csv());
    vab_util::threads::set_jobs(0);
    assert_eq!(serial, parallel, "FR1 physics must not depend on the worker count");
}

fn start_server(executor: Executor, cache: Arc<ResultCache>) -> Server {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        pool: PoolConfig { workers: 2, ..PoolConfig::default() },
        ..ServerConfig::default()
    };
    Server::start(cfg, executor, cache).expect("bind localhost")
}

/// Submits one job and waits for the terminal response; returns
/// (result payload, served-from-cache).
fn run_job(client: &mut Client, job: &JobSpec) -> (String, bool) {
    let resp = client.submit_with_retry(job, None, 500).expect("submit");
    let at_submit =
        resp.str_field("status") == Some("done") && resp.bool_field("cached") == Some(true);
    let id = resp.str_field("id").expect("id").to_string();
    let resp = loop {
        let r = client.fetch_wait(&id, 30_000).expect("fetch");
        match r.str_field("status") {
            Some("queued") | Some("running") => continue,
            _ => break r,
        }
    };
    assert_eq!(resp.str_field("status"), Some("done"), "job {id}: {}", resp.render());
    let payload = resp.get("result").expect("result").render();
    (payload, at_submit || resp.bool_field("cached") == Some(true))
}

#[test]
fn second_bank_build_is_cache_served_and_survives_a_daemon_restart() {
    let dir = temp_dir("bank-daemon");
    let cache_dir = dir.join("cache");
    let bank_dir = dir.join("banks");
    let job = JobSpec::ReplayBank {
        env: EnvSpec::River,
        range_m: 120.0,
        carrier_hz: 18_500.0,
        fs: 1600.0,
        n_snapshots: 2,
        span_s: 1.0,
        seed: 5,
    };

    // First daemon: the bank is built and lands in both tiers (result
    // cache + bank store).
    let first = {
        let cache = Arc::new(ResultCache::persistent(16, &cache_dir).expect("cache dir"));
        let mut server = start_server(Executor::new().with_bank_dir(&bank_dir), cache);
        let mut client = Client::connect(&server.addr().to_string()).expect("connect");
        let (payload, cached) = run_job(&mut client, &job);
        assert!(!cached, "first build must compute");
        let (again, cached_again) = run_job(&mut client, &job);
        assert!(cached_again, "second build through the live daemon must be a cache hit");
        assert_eq!(payload, again, "cached payload must be byte-identical");
        server.shutdown();
        payload
    };

    // Restarted daemon over the same directories: still served without
    // recomputation, byte-identical.
    {
        let cache = Arc::new(ResultCache::persistent(16, &cache_dir).expect("reopen cache"));
        let mut server = start_server(Executor::new().with_bank_dir(&bank_dir), cache);
        let mut client = Client::connect(&server.addr().to_string()).expect("connect");
        let (payload, cached) = run_job(&mut client, &job);
        assert!(cached, "restarted daemon must serve the bank from the persistent cache");
        assert_eq!(payload, first);
        server.shutdown();
    }

    // Even with the result cache wiped, the content-addressed bank store
    // re-serves the same bank: the payload cannot drift.
    {
        let _ = std::fs::remove_dir_all(&cache_dir);
        let cache = Arc::new(ResultCache::persistent(16, &cache_dir).expect("fresh cache"));
        let mut server = start_server(Executor::new().with_bank_dir(&bank_dir), cache);
        let mut client = Client::connect(&server.addr().to_string()).expect("connect");
        let (payload, cached) = run_job(&mut client, &job);
        assert!(!cached, "result cache was wiped, so the job itself recomputes");
        assert_eq!(payload, first, "but the bank comes from the store, so bytes cannot change");
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The BENCH acceptance target: overlap-save beats direct FIR by ≥ 5× at
/// ≥ 1024 taps on a one-second waveform. Steady-state (plan reuse),
/// best-of-three to shake scheduler noise. Gated behind `VAB_BENCH=1`
/// because wall-clock assertions have no place in the default suite.
#[test]
fn overlap_save_meets_the_bench_speedup_target() {
    if std::env::var("VAB_BENCH").is_err() {
        eprintln!("skipped: set VAB_BENCH=1 to run the speedup gate");
        return;
    }
    use std::time::Instant;
    use vab::util::complex::C64;
    let x: Vec<f64> = (0..48_000).map(|i| (i as f64 * 0.013).sin()).collect();
    let h: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.37).cos() / 1024.0).collect();
    let hc: Vec<C64> = h.iter().map(|&t| C64::real(t)).collect();
    let mut plan = vab::util::ola::OlaPlan::new(&hc);
    let mut out = Vec::new();
    plan.convolve_real_into(&x, &mut out); // warm: plan cache + buffers
    let best = |f: &mut dyn FnMut()| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let direct = best(&mut || {
        assert!(vab::util::filter::convolve(&x, &h).len() > x.len());
    });
    let fft = best(&mut || {
        plan.convolve_real_into(&x, &mut out);
        assert!(out.len() > x.len());
    });
    let speedup = direct / fft.max(1e-12);
    eprintln!(
        "overlap-save speedup at 1024 taps: {speedup:.1}x (direct {direct:.4}s, fft {fft:.4}s)"
    );
    assert!(speedup >= 5.0, "need >=5x, measured {speedup:.1}x");
}
