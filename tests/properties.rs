//! Property-based tests (proptest) on the core data structures and
//! invariants across the workspace.

use proptest::prelude::*;
use vab::link::bits::{bits_to_bytes, bytes_to_bits};
use vab::link::crc::{crc16_ccitt, crc32};
use vab::link::fec::Fec;
use vab::link::frame::{Frame, LinkConfig, MAX_PAYLOAD};
use vab::link::interleave::Interleaver;
use vab::link::whiten::whiten;
use vab::phy::fm0::{fm0_check_boundaries, fm0_decode_hard, fm0_encode};
use vab::piezo::bvd::Bvd;
use vab::piezo::reflection::{gamma, gamma_to_load, Load};
use vab::util::complex::C64;
use vab::util::db::{db_to_lin_pow, lin_pow_to_db};
use vab::util::fft::Fft;
use vab::util::resample::fractional_delay;
use vab::util::stats::RunningStats;
use vab::util::units::Hertz;

proptest! {
    // ---------------- numerics

    #[test]
    fn fft_roundtrip_any_signal(values in prop::collection::vec(-1e3f64..1e3, 64)) {
        let mut buf: Vec<C64> = values.iter().map(|&v| C64::real(v)).collect();
        let plan = Fft::new(64);
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (b, &v) in buf.iter().zip(&values) {
            prop_assert!((b.re - v).abs() < 1e-6);
            prop_assert!(b.im.abs() < 1e-6);
        }
    }

    #[test]
    fn db_roundtrip(db in -200.0f64..200.0) {
        let back = lin_pow_to_db(db_to_lin_pow(db));
        prop_assert!((back - db).abs() < 1e-9);
    }

    #[test]
    fn complex_multiplication_preserves_magnitude_product(
        a_re in -10.0f64..10.0, a_im in -10.0f64..10.0,
        b_re in -10.0f64..10.0, b_im in -10.0f64..10.0,
    ) {
        let a = C64::new(a_re, a_im);
        let b = C64::new(b_re, b_im);
        let prod = (a * b).abs();
        prop_assert!((prod - a.abs() * b.abs()).abs() < 1e-9 * (1.0 + prod));
    }

    #[test]
    fn running_stats_mean_within_bounds(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = RunningStats::new();
        for &v in &values {
            s.push(v);
        }
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
    }

    #[test]
    fn fractional_delay_conserves_peak_order(
        delay in 0.0f64..20.0,
    ) {
        // An impulse stays a localized, unit-ish pulse under any delay.
        let mut x = vec![0.0; 64];
        x[10] = 1.0;
        let y = fractional_delay(&x, delay, 16);
        let total: f64 = y.iter().sum();
        prop_assert!((total - 1.0).abs() < 0.05, "energy leaked: {total}");
    }

    #[test]
    fn fft_convolution_matches_direct_any_signal(
        x in prop::collection::vec(-10.0f64..10.0, 1..400),
        h in prop::collection::vec(-2.0f64..2.0, 64..200),
    ) {
        // Golden equivalence: the overlap-save engine must agree with the
        // direct form to FFT rounding for any signal/tap pair.
        let got = vab::util::ola::convolve_fft(&x, &h);
        let want = vab::util::filter::convolve(&x, &h);
        prop_assert_eq!(got.len(), want.len());
        let scale = want.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!((g - w).abs() < 1e-9 * scale, "sample {i}: {g} vs {w}");
        }
    }

    #[test]
    fn convolve_auto_matches_direct_any_sizes(
        x in prop::collection::vec(-10.0f64..10.0, 1..300),
        h in prop::collection::vec(-2.0f64..2.0, 1..300),
    ) {
        // The crossover dispatch (direct below FFT_CROSSOVER_TAPS, FFT at
        // or above, roles swapped when the kernel is longer) never changes
        // the answer beyond rounding.
        let got = vab::util::ola::convolve_auto(&x, &h);
        let want = vab::util::filter::convolve(&x, &h);
        prop_assert_eq!(got.len(), want.len());
        let scale = want.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            prop_assert!((g - w).abs() < 1e-9 * scale, "sample {i}: {g} vs {w}");
        }
    }

    // ---------------- link layer

    #[test]
    fn bits_bytes_roundtrip(data in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn fm0_roundtrip_any_bits(bits in prop::collection::vec(any::<bool>(), 1..256)) {
        let chips = fm0_encode(&bits);
        prop_assert_eq!(fm0_check_boundaries(&chips), None);
        prop_assert_eq!(fm0_decode_hard(&chips).expect("even"), bits);
    }

    #[test]
    fn whitening_is_involution_any_bits(bits in prop::collection::vec(any::<bool>(), 0..600)) {
        prop_assert_eq!(whiten(&whiten(&bits)), bits);
    }

    #[test]
    fn crc_detects_any_single_flip(
        data in prop::collection::vec(any::<u8>(), 1..40),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut corrupted = data.clone();
        let i = byte_idx.index(corrupted.len());
        corrupted[i] ^= 1 << bit;
        prop_assert_ne!(crc16_ccitt(&data), crc16_ccitt(&corrupted));
        prop_assert_ne!(crc32(&data), crc32(&corrupted));
    }

    #[test]
    fn fec_roundtrips_any_bits(
        bits in prop::collection::vec(any::<bool>(), 1..128),
        which in 0usize..4,
    ) {
        let fec = [Fec::None, Fec::Repetition(3), Fec::Hamming74, Fec::Conv][which];
        let decoded = fec.decode(&fec.encode(&bits));
        prop_assert_eq!(&decoded[..bits.len()], &bits[..]);
    }

    #[test]
    fn hamming_corrects_any_single_error(
        bits in prop::collection::vec(any::<bool>(), 4),
        pos in 0usize..7,
    ) {
        let mut coded = Fec::Hamming74.encode(&bits);
        coded[pos] = !coded[pos];
        prop_assert_eq!(Fec::Hamming74.decode(&coded), bits);
    }

    #[test]
    fn interleaver_is_a_permutation(
        bits in prop::collection::vec(any::<bool>(), 1..200),
        rows in 1usize..8,
        cols in 1usize..8,
    ) {
        let il = Interleaver::new(rows, cols);
        let tx = il.interleave(&bits);
        let rx = il.deinterleave(&tx);
        prop_assert_eq!(&rx[..bits.len()], &bits[..]);
        // Population is conserved (it is a permutation + padding).
        let ones_in: usize = bits.iter().filter(|&&b| b).count();
        let ones_out: usize = tx.iter().filter(|&&b| b).count();
        prop_assert_eq!(ones_in, ones_out);
    }

    #[test]
    fn frame_roundtrip_any_payload(
        dest in any::<u8>(),
        src in any::<u8>(),
        seq in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..MAX_PAYLOAD),
    ) {
        let f = Frame::new(dest, src, seq, payload);
        prop_assert_eq!(Frame::from_bytes(&f.to_bytes()).expect("clean"), f);
    }

    #[test]
    fn coded_frame_roundtrip_any_payload(
        payload in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let link = LinkConfig::vab_default();
        let f = Frame::new(1, 2, 3, payload);
        let decoded = link.decode(&link.encode(&f)).expect("clean channel");
        prop_assert_eq!(decoded, f);
    }

    // ---------------- electro-mechanics

    #[test]
    fn passive_loads_never_amplify(
        r in 0.0f64..1e6,
        x in -1e6f64..1e6,
        khz in 5.0f64..60.0,
    ) {
        let bvd = Bvd::vab_default();
        let g = gamma(&bvd, Load::Custom(C64::new(r, x)), Hertz(khz * 1e3)).abs();
        prop_assert!(g <= 1.0 + 1e-6, "|Γ| = {g} for Z = {r}+j{x}");
    }

    #[test]
    fn gamma_load_inverse_consistency(
        mag in 0.0f64..0.95,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let bvd = Bvd::vab_default();
        let f = bvd.series_resonance();
        let g = C64::from_polar(mag, phase);
        let z = gamma_to_load(&bvd, g, f);
        // Any |Γ| < 1 must map to a passive load...
        prop_assert!(z.re >= -1e-6, "non-passive load {z}");
        // ...and back to the same Γ.
        let back = gamma(&bvd, Load::Custom(z), f);
        prop_assert!((back - g).abs() < 1e-6);
    }
}

// Van Atta invariants get their own block with fewer cases (heavier math).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn retro_gain_bounded_by_element_count(
        pairs in 1usize..6,
        angle in -80.0f64..80.0,
    ) {
        use vab::node::array::VanAttaArray;
        use vab::util::units::Degrees;
        let arr = VanAttaArray::vab_default(pairs, Hertz(18_500.0));
        let g = arr.retro_gain(Degrees(angle), Hertz(18_500.0));
        prop_assert!(g <= 2.0 * pairs as f64 + 1e-9, "gain {g} exceeds N");
        prop_assert!(g >= 0.0);
    }

    #[test]
    fn retro_gain_is_symmetric_in_angle(
        pairs in 1usize..6,
        angle in 0.0f64..80.0,
    ) {
        use vab::node::array::VanAttaArray;
        use vab::util::units::Degrees;
        let arr = VanAttaArray::vab_default(pairs, Hertz(18_500.0));
        let plus = arr.retro_gain(Degrees(angle), Hertz(18_500.0));
        let minus = arr.retro_gain(Degrees(-angle), Hertz(18_500.0));
        prop_assert!((plus - minus).abs() < 1e-9);
    }

    #[test]
    fn transmission_loss_monotone_any_environment(
        d1 in 1.0f64..1000.0,
        extra in 1.0f64..1000.0,
        salt in any::<bool>(),
    ) {
        use vab::acoustics::environment::{Environment, SeaState};
        let env = if salt { Environment::ocean(SeaState::Smooth) } else { Environment::river() };
        let f = Hertz(18_500.0);
        let tl1 = env.transmission_loss(f, vab::util::units::Meters(d1)).value();
        let tl2 = env.transmission_loss(f, vab::util::units::Meters(d1 + extra)).value();
        prop_assert!(tl2 >= tl1);
    }
}
