//! Cross-layer integration: node FSM × link codecs × MAC × ARQ, with a
//! misbehaving (bit-flipping, frame-dropping) channel between them.

use rand::RngExt;
use vab::link::arq::{ArqReceiver, ArqSender, ReceiveOutcome, SenderAction};
use vab::link::frame::{Frame, LinkConfig};
use vab::mac::poll::PollingMac;
use vab::node::array::VanAttaArray;
use vab::node::commands::Command;
use vab::node::node::{Node, NodeConfig, NodeEvent};
use vab::util::rng::seeded;
use vab::util::units::Hertz;

const F0: Hertz = Hertz(18_500.0);

fn powered_node(addr: u8) -> Node {
    let mut n = Node::new(NodeConfig::new(addr), VanAttaArray::vab_default(4, F0));
    n.force_powered();
    n
}

/// Flips each channel bit with probability `p`.
fn noisy(bits: &[bool], p: f64, rng: &mut rand::rngs::StdRng) -> Vec<bool> {
    bits.iter().map(|&b| if rng.random::<f64>() < p { !b } else { b }).collect()
}

#[test]
fn query_reply_survives_two_percent_channel_errors() {
    let mut rng = seeded(5);
    let mut node = powered_node(0x21);
    node.queue_reading(vec![0xDE, 0xAD, 0xBE, 0xEF]);
    let query = Frame::new(0x21, 0x00, 0, Command::Query.to_payload());
    let NodeEvent::Reply { channel_bits, .. } = node.handle_downlink(&query) else {
        panic!("no reply")
    };
    // 2 % random channel errors: Viterbi + interleaver must absorb them.
    let dirty = noisy(&channel_bits, 0.02, &mut rng);
    let frame = node.config.link.decode(&dirty).expect("coded link shrugs off 2%");
    assert_eq!(frame.payload, vec![0xDE, 0xAD, 0xBE, 0xEF]);
    assert_eq!(frame.src, 0x21);
}

#[test]
fn uncoded_link_dies_where_coded_link_lives() {
    let mut rng = seeded(6);
    let frame = Frame::new(1, 2, 0, vec![7; 24]);
    let coded = LinkConfig::vab_default();
    let uncoded = LinkConfig::uncoded();
    let mut coded_fail = 0;
    let mut uncoded_fail = 0;
    for _ in 0..25 {
        let bits_c = noisy(&coded.encode(&frame), 0.02, &mut rng);
        let bits_u = noisy(&uncoded.encode(&frame), 0.02, &mut rng);
        if coded.decode(&bits_c).is_err() {
            coded_fail += 1;
        }
        if uncoded.decode(&bits_u).is_err() {
            uncoded_fail += 1;
        }
    }
    assert!(coded_fail <= 2, "coded link failed {coded_fail}/25");
    assert!(uncoded_fail >= 20, "uncoded link only failed {uncoded_fail}/25");
}

#[test]
fn polling_mac_collects_from_a_lossy_field() {
    // Three nodes behind a channel that drops every third reply frame.
    let mut rng = seeded(7);
    let mut nodes: Vec<Node> = [0x01u8, 0x02, 0x03].iter().map(|&a| powered_node(a)).collect();
    for (i, n) in nodes.iter_mut().enumerate() {
        for k in 0..4 {
            n.queue_reading(vec![i as u8, k]);
        }
    }
    let mut mac = PollingMac::new(0x00, vec![0x01, 0x02, 0x03], 3);
    let mut collected = 0;
    let mut drop_counter = 0u32;
    for _ in 0..40 {
        let query = mac.next_query();
        let node = nodes.iter_mut().find(|n| n.config.address == query.dest).expect("known node");
        match node.handle_downlink(&query) {
            NodeEvent::Reply { channel_bits, .. } => {
                node.reply_done();
                drop_counter += 1;
                let lost = drop_counter.is_multiple_of(3);
                // Light channel noise on the surviving frames.
                let dirty = noisy(&channel_bits, 0.01, &mut rng);
                if !lost {
                    if let Ok(frame) = node.config.link.decode(&dirty) {
                        mac.on_reply(frame.src);
                        collected += 1;
                        continue;
                    }
                }
                mac.on_timeout();
            }
            _ => {
                mac.on_timeout();
            }
        }
    }
    assert!(collected >= 20, "only collected {collected} replies");
    assert!(mac.total_delivery_ratio() > 0.5);
}

#[test]
fn arq_over_frame_codec_delivers_in_order() {
    // Stop-and-wait ARQ across the real frame codec with a deaf interval.
    let link = LinkConfig::vab_default();
    let mut tx = ArqSender::new(4);
    let mut rx = ArqReceiver::new();
    let mut delivered: Vec<Vec<u8>> = Vec::new();
    for (i, payload) in [vec![1u8], vec![2, 2], vec![3, 3, 3]].into_iter().enumerate() {
        let SenderAction::Transmit { seq, payload: p } = tx.offer(payload).expect("ready") else {
            panic!()
        };
        // First attempt of frame 1 vanishes in a fade.
        let mut attempts = 0;
        let mut current = (seq, p);
        loop {
            attempts += 1;
            let lost = i == 1 && attempts == 1;
            if !lost {
                let wire = link.encode(&Frame::new(0, 9, current.0, current.1.clone()));
                let frame = link.decode(&wire).expect("clean decode");
                match rx.on_frame(frame.seq, frame.payload) {
                    ReceiveOutcome::Deliver { payload, ack_seq } => {
                        delivered.push(payload);
                        tx.on_ack(ack_seq);
                        break;
                    }
                    ReceiveOutcome::Duplicate { ack_seq } => {
                        tx.on_ack(ack_seq);
                        break;
                    }
                }
            }
            match tx.on_timeout() {
                SenderAction::Transmit { seq, payload } => current = (seq, payload),
                SenderAction::Idle => break,
            }
        }
    }
    assert_eq!(delivered, vec![vec![1u8], vec![2, 2], vec![3, 3, 3]]);
    assert_eq!(tx.delivered, 3);
    assert_eq!(tx.dropped, 0);
}

#[test]
fn node_honours_rate_change_end_to_end() {
    let mut node = powered_node(0x05);
    node.queue_reading(vec![1]);
    let set = Frame::new(0x05, 0, 0, Command::SetRate { rate_code: 3 }.to_payload());
    node.handle_downlink(&set);
    let query = Frame::new(0x05, 0, 0, Command::Query.to_payload());
    let NodeEvent::Reply { bit_rate, .. } = node.handle_downlink(&query) else { panic!() };
    assert_eq!(bit_rate, 1000.0);
}

#[test]
fn dead_node_is_silent_until_recharged() {
    let mut node = Node::new(NodeConfig::new(0x09), VanAttaArray::vab_default(2, F0));
    let query = Frame::new(0x09, 0, 0, Command::Query.to_payload());
    assert_eq!(node.handle_downlink(&query), NodeEvent::None, "dead node must not reply");
    // Strong field for a while → wakes and answers.
    for _ in 0..100_000 {
        if node.step_energy(vab::util::units::Db(165.0), vab::util::units::Seconds(0.05)) {
            break;
        }
    }
    node.queue_reading(vec![42]);
    assert!(matches!(node.handle_downlink(&query), NodeEvent::Reply { .. }));
}
