//! Reproducibility guarantees: everything the repository publishes must be
//! bit-identical across runs and thread counts.

use vab::sim::baseline::SystemKind;
use vab::sim::montecarlo::{run_point, MonteCarloConfig, TrialEngine};
use vab::sim::scenario::Scenario;
use vab::util::units::Meters;

fn cfg(threads: usize, seed: u64) -> MonteCarloConfig {
    MonteCarloConfig {
        trials: 24,
        bits_per_trial: 256,
        seed,
        engine: TrialEngine::LinkBudget,
        threads,
    }
}

#[test]
fn monte_carlo_independent_of_thread_count() {
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(330.0));
    let r1 = run_point(&s, &cfg(1, 5));
    let r2 = run_point(&s, &cfg(2, 5));
    let r8 = run_point(&s, &cfg(8, 5));
    assert_eq!(r1.ber.errors(), r2.ber.errors());
    assert_eq!(r1.ber.errors(), r8.ber.errors());
    assert_eq!(r1.packet_errors, r8.packet_errors);
    assert_eq!(r1.trial_bers, r8.trial_bers);
    assert!((r1.ebn0.mean() - r8.ebn0.mean()).abs() < 1e-9);
}

#[test]
fn different_seeds_differ() {
    let s = Scenario::river(SystemKind::Pab, Meters(40.0));
    let a = run_point(&s, &cfg(0, 1));
    let b = run_point(&s, &cfg(0, 2));
    // At a fading-sensitive range the realizations must differ.
    assert_ne!(a.trial_bers, b.trial_bers);
}

#[test]
fn same_seed_same_everything() {
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(350.0));
    let a = run_point(&s, &cfg(0, 123));
    let b = run_point(&s, &cfg(0, 123));
    assert_eq!(a.ber.errors(), b.ber.errors());
    assert_eq!(a.trial_bers, b.trial_bers);
}

#[test]
fn experiment_tables_are_reproducible() {
    let cfg = vab_bench::ExpConfig { trials: 6, bits: 128, seed: 31 };
    let a = vab_bench::experiments::f7_ber_vs_range(&cfg);
    let b = vab_bench::experiments::f7_ber_vs_range(&cfg);
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn faulted_point_independent_of_thread_count() {
    use vab::fault::{FaultConfig, FaultPlan};
    use vab::sim::montecarlo::run_point_faulted;
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(280.0));
    let plan = FaultPlan::new(42, FaultConfig::with_intensity(0.5));
    let r1 = run_point_faulted(&s, &cfg(1, 42), &plan);
    let r8 = run_point_faulted(&s, &cfg(8, 42), &plan);
    assert_eq!(r1.ber.errors(), r8.ber.errors());
    assert_eq!(r1.packet_errors, r8.packet_errors);
    assert_eq!(r1.trial_bers, r8.trial_bers);
    assert!((r1.ebn0.mean() - r8.ebn0.mean()).abs() < 1e-9);
}

#[test]
fn faulted_campaign_bit_identical_across_runs() {
    use vab::fault::FaultConfig;
    use vab::sim::campaign::{run_campaign, CampaignConfig};
    let cfg = CampaignConfig {
        n_trials: 80,
        faults: Some(FaultConfig::with_intensity(0.6)),
        ..CampaignConfig::vab_default()
    };
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.errors, y.errors);
        assert_eq!(x.bits, y.bits);
        assert_eq!(x.range_m, y.range_m);
        assert_eq!(x.ebn0_db, y.ebn0_db);
    }
}

#[test]
fn fault_plans_are_pure_functions_of_seed_and_trial() {
    use vab::fault::{FaultConfig, FaultPlan};
    let plan = FaultPlan::new(9, FaultConfig::severe());
    // Trial faults must not depend on draw order: querying out of order,
    // repeatedly, or from clones yields identical faults.
    let forward: Vec<_> = (0..16).map(|t| plan.trial_faults(t, 8)).collect();
    let mut backward: Vec<_> = (0..16).rev().map(|t| plan.trial_faults(t, 8)).collect();
    backward.reverse();
    for (a, b) in forward.iter().zip(&backward) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

#[test]
fn sample_level_trials_reproducible() {
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(150.0));
    let mc = MonteCarloConfig {
        trials: 3,
        bits_per_trial: 96,
        seed: 77,
        engine: TrialEngine::SampleLevel,
        threads: 0,
    };
    let a = run_point(&s, &mc);
    let b = run_point(&s, &mc);
    assert_eq!(a.ber.errors(), b.ber.errors());
    assert_eq!(a.trial_bers, b.trial_bers);
}
