//! Reproducibility guarantees: everything the repository publishes must be
//! bit-identical across runs and thread counts.

use vab::sim::baseline::SystemKind;
use vab::sim::montecarlo::{run_point, MonteCarloConfig, TrialEngine};
use vab::sim::scenario::Scenario;
use vab::util::units::Meters;

fn cfg(threads: usize, seed: u64) -> MonteCarloConfig {
    MonteCarloConfig {
        trials: 24,
        bits_per_trial: 256,
        seed,
        engine: TrialEngine::LinkBudget,
        threads,
    }
}

#[test]
fn monte_carlo_independent_of_thread_count() {
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(330.0));
    let r1 = run_point(&s, &cfg(1, 5));
    let r2 = run_point(&s, &cfg(2, 5));
    let r8 = run_point(&s, &cfg(8, 5));
    assert_eq!(r1.ber.errors(), r2.ber.errors());
    assert_eq!(r1.ber.errors(), r8.ber.errors());
    assert_eq!(r1.packet_errors, r8.packet_errors);
    assert_eq!(r1.trial_bers, r8.trial_bers);
    assert!((r1.ebn0.mean() - r8.ebn0.mean()).abs() < 1e-9);
}

#[test]
fn different_seeds_differ() {
    let s = Scenario::river(SystemKind::Pab, Meters(40.0));
    let a = run_point(&s, &cfg(0, 1));
    let b = run_point(&s, &cfg(0, 2));
    // At a fading-sensitive range the realizations must differ.
    assert_ne!(a.trial_bers, b.trial_bers);
}

#[test]
fn same_seed_same_everything() {
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(350.0));
    let a = run_point(&s, &cfg(0, 123));
    let b = run_point(&s, &cfg(0, 123));
    assert_eq!(a.ber.errors(), b.ber.errors());
    assert_eq!(a.trial_bers, b.trial_bers);
}

#[test]
fn experiment_tables_are_reproducible() {
    let cfg = vab_bench::ExpConfig { trials: 6, bits: 128, seed: 31 };
    let a = vab_bench::experiments::f7_ber_vs_range(&cfg);
    let b = vab_bench::experiments::f7_ber_vs_range(&cfg);
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn sample_level_trials_reproducible() {
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(150.0));
    let mc = MonteCarloConfig {
        trials: 3,
        bits_per_trial: 96,
        seed: 77,
        engine: TrialEngine::SampleLevel,
        threads: 0,
    };
    let a = run_point(&s, &mc);
    let b = run_point(&s, &mc);
    assert_eq!(a.ber.errors(), b.ber.errors());
    assert_eq!(a.trial_bers, b.trial_bers);
}
