//! Integration tests for the service layer (`vab-svc` + the bench glue):
//! the end-to-end cache speedup, worker-panic isolation, backpressure,
//! and canonical-serialization properties the cache's correctness rests
//! on.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use vab::svc::cache::ResultCache;
use vab::svc::client::{Client, ClientConfig, ClientError};
use vab::svc::exec::Executor;
use vab::svc::job::{EngineSpec, EnvSpec, JobSpec, SystemSpec};
use vab::svc::pool::PoolConfig;
use vab::svc::server::{Server, ServerConfig};
use vab::util::json::Json;
use vab_bench::serve::{bench_executor, figure_job};
use vab_bench::ExpConfig;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vab-svc-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(executor: Executor, cache: Arc<ResultCache>, pool: PoolConfig) -> Server {
    let cfg = ServerConfig { addr: "127.0.0.1:0".into(), pool, ..ServerConfig::default() };
    Server::start(cfg, executor, cache).expect("bind localhost")
}

fn connect(server: &Server) -> Client {
    Client::connect(&server.addr().to_string()).expect("connect")
}

/// Submits `jobs` and waits for all results; returns (payload, cached)
/// per job in order. "Cached" is the submit response's verdict when the
/// job was already terminal at submission (cache hit or dedup), else the
/// fetch response's.
fn run_batch(client: &mut Client, jobs: &[JobSpec]) -> Vec<(String, bool)> {
    let ids: Vec<(String, bool)> = jobs
        .iter()
        .map(|job| {
            let resp = client.submit_with_retry(job, None, 500).expect("submit");
            let at_submit =
                resp.str_field("status") == Some("done") && resp.bool_field("cached") == Some(true);
            (resp.str_field("id").expect("id").to_string(), at_submit)
        })
        .collect();
    ids.iter()
        .map(|(id, at_submit)| {
            let resp = loop {
                let r = client.fetch_wait(id, 30_000).expect("fetch");
                match r.str_field("status") {
                    Some("queued") | Some("running") => continue,
                    _ => break r,
                }
            };
            assert_eq!(resp.str_field("status"), Some("done"), "job {id}: {}", resp.render());
            let payload = resp.get("result").expect("result").render();
            (payload, *at_submit || resp.bool_field("cached") == Some(true))
        })
        .collect()
}

#[test]
fn second_identical_figure_batch_is_cached_and_much_faster() {
    let dir = temp_dir("speedup");
    let cache = Arc::new(ResultCache::persistent(64, &dir).expect("cache dir"));
    let mut server =
        start_server(bench_executor(), cache, PoolConfig { workers: 2, ..PoolConfig::default() });
    let mut client = connect(&server);
    let cfg = ExpConfig { trials: 12, bits: 128, seed: 42 };
    let jobs: Vec<JobSpec> = ["t3_link_budget", "f6_snr_vs_range", "f7_ber_vs_range"]
        .iter()
        .map(|name| figure_job(name, &cfg))
        .collect();

    let cold_start = Instant::now();
    let cold = run_batch(&mut client, &jobs);
    let cold_elapsed = cold_start.elapsed();
    assert!(cold.iter().all(|(_, cached)| !cached), "first batch must compute");

    let warm_start = Instant::now();
    let warm = run_batch(&mut client, &jobs);
    let warm_elapsed = warm_start.elapsed();
    assert!(warm.iter().all(|(_, cached)| *cached), "second batch must be all cache hits");
    for ((a, _), (b, _)) in cold.iter().zip(&warm) {
        assert_eq!(a, b, "cached results must be bit-identical to computed ones");
    }
    assert!(
        cold_elapsed >= warm_elapsed * 10,
        "cache must be >=10x faster: cold {cold_elapsed:.2?}, warm {warm_elapsed:.2?}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn faulted_daemon_fails_typed_but_keeps_serving_cached_results() {
    let dir = temp_dir("faulted");
    let cfg = ExpConfig { trials: 8, bits: 64, seed: 7 };
    let job = figure_job("t3_link_budget", &cfg);

    // A healthy daemon computes and populates the shared persistent cache.
    {
        let cache = Arc::new(ResultCache::persistent(16, &dir).expect("cache dir"));
        let mut server = start_server(bench_executor(), cache, PoolConfig::default());
        let mut client = connect(&server);
        let results = run_batch(&mut client, std::slice::from_ref(&job));
        assert!(!results[0].1);
        server.shutdown();
    }

    // A daemon whose every execution panics still serves the cache,
    // reports fresh jobs as typed worker panics, and keeps answering.
    let cache = Arc::new(ResultCache::persistent(16, &dir).expect("reopen cache"));
    let executor = bench_executor().with_faults(vab::fault::WorkerFaultPlan::always(1234));
    let mut server = start_server(executor, cache, PoolConfig::default());
    let mut client = connect(&server);

    let cached = run_batch(&mut client, std::slice::from_ref(&job));
    assert!(cached[0].1, "previously computed figure must come from the cache");

    let fresh = figure_job("f6_snr_vs_range", &cfg);
    let resp = client.submit(&fresh, None).expect("admitted");
    let id = resp.str_field("id").expect("id").to_string();
    let resp = loop {
        let r = client.fetch_wait(&id, 30_000).expect("fetch");
        match r.str_field("status") {
            Some("queued") | Some("running") => continue,
            _ => break r,
        }
    };
    assert_eq!(resp.str_field("status"), Some("failed"));
    assert_eq!(resp.str_field("failure"), Some("worker_panicked"), "{}", resp.render());

    let stats = client.stats().expect("daemon still answers");
    assert_eq!(stats.u64_field("jobs_failed"), Some(1));
    assert!(stats.u64_field("cache_hits").unwrap_or(0) >= 1);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn slow_mc(seed: u64) -> JobSpec {
    JobSpec::McPoint {
        system: SystemSpec::Vab { n_pairs: 4 },
        env: EnvSpec::River,
        range_m: 60.0,
        rotation_deg: 0.0,
        trials: 4000,
        bits: 64,
        seed,
        engine: EngineSpec::LinkBudget,
    }
}

#[test]
fn full_queue_pushes_back_and_retry_eventually_lands() {
    let cache = Arc::new(ResultCache::in_memory(64));
    let pool = PoolConfig { workers: 1, queue_cap: 1, retry_after_ms: 10 };
    let mut server = start_server(Executor::new(), cache, pool);
    let mut client = connect(&server);

    let mut backpressured = None;
    for seed in 0..30u64 {
        match client.submit(&slow_mc(seed), None) {
            Ok(_) => continue,
            Err(ClientError::QueueFull { retry_after_ms }) => {
                backpressured = Some(retry_after_ms);
                break;
            }
            Err(e) => panic!("unexpected client error: {e}"),
        }
    }
    assert_eq!(backpressured, Some(10), "a full queue must reject with the daemon's hint");

    // The retry loop must eventually admit the job as the queue drains.
    let resp = client.submit_with_retry(&slow_mc(999), None, 10_000).expect("retries land");
    assert!(resp.str_field("id").is_some());

    server.shutdown();
}

#[test]
fn deadline_expiry_is_reported_over_the_wire() {
    let cache = Arc::new(ResultCache::in_memory(16));
    let pool = PoolConfig { workers: 1, queue_cap: 8, retry_after_ms: 10 };
    let mut server = start_server(Executor::new(), cache, pool);
    let mut client = connect(&server);

    // Occupy the single worker, then submit with an already-hopeless deadline.
    client.submit(&slow_mc(1), None).expect("slow job admitted");
    let resp = client.submit(&slow_mc(2), Some(0)).expect("deadline job admitted");
    let id = resp.str_field("id").expect("id").to_string();
    let resp = loop {
        let r = client.fetch_wait(&id, 30_000).expect("fetch");
        match r.str_field("status") {
            Some("queued") | Some("running") => continue,
            _ => break r,
        }
    };
    assert_eq!(resp.str_field("status"), Some("failed"));
    assert_eq!(resp.str_field("failure"), Some("deadline_expired"), "{}", resp.render());

    server.shutdown();
}

#[test]
fn cache_determinism_same_spec_hits_changed_seed_or_engine_misses() {
    let cache = ResultCache::in_memory(16);
    let ex = Executor::new();
    let spec = JobSpec::McPoint {
        system: SystemSpec::Vab { n_pairs: 4 },
        env: EnvSpec::Ocean { sea_state: 1 },
        range_m: 45.0,
        rotation_deg: 10.0,
        trials: 6,
        bits: 64,
        seed: 77,
        engine: EngineSpec::LinkBudget,
    };
    let digest = spec.digest();
    let first = ex.execute(&spec, digest, &cache).expect("compute");
    cache.put(digest, &spec.canonical(), &first);
    assert_eq!(cache.get(digest).as_deref(), Some(first.as_str()), "identical spec must hit");
    let recomputed = ex.execute(&spec, digest, &cache).expect("recompute");
    assert_eq!(first, recomputed, "cached and computed payloads must be byte-identical");

    let mut reseeded = spec.clone();
    if let JobSpec::McPoint { seed, .. } = &mut reseeded {
        *seed = 78;
    }
    assert_ne!(reseeded.digest(), digest, "seed change must re-address");
    assert_eq!(cache.get(reseeded.digest()), None, "and therefore miss");
    assert_eq!(
        cache.get(spec.digest_with_version("vab-engine/next")),
        None,
        "engine bump must orphan the old entry"
    );
}

// ---------------------------------------------------------------------------
// Resilience: typed client timeouts and raw-wire abuse of a live daemon.
// ---------------------------------------------------------------------------

#[test]
fn client_reports_typed_timeout_against_a_silent_listener() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind silent listener");
    let addr = listener.local_addr().expect("addr").to_string();
    let hold = std::thread::spawn(move || {
        // Accept, then read without ever replying; exits when the client
        // gives up and drops its half of the connection.
        let (mut stream, _) = listener.accept().expect("accept");
        let mut buf = [0u8; 256];
        while matches!(stream.read(&mut buf), Ok(n) if n > 0) {}
    });
    let cfg = ClientConfig {
        read_timeout: Some(Duration::from_millis(200)),
        write_timeout: Some(Duration::from_millis(200)),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(&addr, cfg).expect("connect");
    match client.health() {
        Err(ClientError::Timeout) => {}
        Ok(resp) => panic!("expected ClientError::Timeout, got reply {}", resp.render()),
        Err(other) => panic!("expected ClientError::Timeout, got {other}"),
    }
    drop(client);
    hold.join().expect("listener thread");
}

fn raw_wire(server: &Server) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(server.addr()).expect("raw connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    (BufReader::new(stream.try_clone().expect("clone")), stream)
}

fn send_line(stream: &mut TcpStream, line: &[u8]) {
    stream.write_all(line).expect("write frame");
    stream.write_all(b"\n").expect("write newline");
}

/// Reads one reply line; `None` means the daemon closed the connection.
fn read_reply(reader: &mut BufReader<TcpStream>) -> Option<Json> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(Json::parse(line.trim_end()).expect("daemon replies are JSON")),
        Err(e) => panic!("read reply: {e}"),
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let cache = Arc::new(ResultCache::in_memory(16));
    let mut server = start_server(
        Executor::new(),
        cache,
        PoolConfig { workers: 1, queue_cap: 8, retry_after_ms: 10 },
    );
    let (mut reader, mut stream) = raw_wire(&server);

    // Truncated JSON, non-JSON text, JSON of the wrong shape, invalid
    // UTF-8: each answered with a typed error, connection stays up.
    let abuse: [&[u8]; 4] = [
        b"{\"op\":\"submit\",\"job\":{",
        b"GET / HTTP/1.1",
        b"{\"flavor\":\"wrong\"}",
        b"\xff\xfe{\"op\":\"health\"}",
    ];
    for frame in abuse {
        send_line(&mut stream, frame);
        let reply = read_reply(&mut reader).expect("typed error, not a hangup");
        assert_eq!(reply.bool_field("ok"), Some(false), "{}", reply.render());
    }
    // The very same connection still serves a well-formed request.
    send_line(&mut stream, b"{\"op\":\"health\"}");
    let reply = read_reply(&mut reader).expect("healthy reply");
    assert_eq!(reply.bool_field("ok"), Some(true), "{}", reply.render());
    assert_eq!(server.malformed_frames(), abuse.len() as u64);
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_then_the_connection_closes_cleanly() {
    let cache = Arc::new(ResultCache::in_memory(16));
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        pool: PoolConfig { workers: 1, queue_cap: 8, retry_after_ms: 10 },
        max_line_bytes: 4096,
        ..ServerConfig::default()
    };
    let mut server = Server::start(cfg, Executor::new(), cache).expect("bind");
    let (mut reader, mut stream) = raw_wire(&server);
    send_line(&mut stream, &vec![b'a'; 8192]);
    let reply = read_reply(&mut reader).expect("typed frame_too_large");
    assert_eq!(reply.bool_field("ok"), Some(false));
    assert!(reply.render().contains("frame_too_large"), "{}", reply.render());
    assert!(
        read_reply(&mut reader).is_none(),
        "connection must close after an oversized frame (no resync inside the line)"
    );
    // A fresh connection is unaffected.
    let (mut r2, mut s2) = raw_wire(&server);
    send_line(&mut s2, b"{\"op\":\"health\"}");
    assert_eq!(read_reply(&mut r2).expect("fresh connection").bool_field("ok"), Some(true));
    server.shutdown();
}

#[test]
fn request_budget_exhaustion_asks_the_client_to_reconnect() {
    let cache = Arc::new(ResultCache::in_memory(16));
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        pool: PoolConfig { workers: 1, queue_cap: 8, retry_after_ms: 10 },
        request_budget: 2,
        ..ServerConfig::default()
    };
    let mut server = Server::start(cfg, Executor::new(), cache).expect("bind");
    let (mut reader, mut stream) = raw_wire(&server);
    for _ in 0..2 {
        send_line(&mut stream, b"{\"op\":\"health\"}");
        assert_eq!(read_reply(&mut reader).expect("within budget").bool_field("ok"), Some(true));
    }
    send_line(&mut stream, b"{\"op\":\"health\"}");
    let reply = read_reply(&mut reader).expect("typed budget refusal");
    assert_eq!(reply.str_field("error"), Some("budget_exhausted"), "{}", reply.render());
    assert!(read_reply(&mut reader).is_none(), "connection must close once the budget is spent");
    // Reconnecting resets the budget.
    let (mut r2, mut s2) = raw_wire(&server);
    send_line(&mut s2, b"{\"op\":\"health\"}");
    assert_eq!(read_reply(&mut r2).expect("fresh budget").bool_field("ok"), Some(true));
    server.shutdown();
}

/// One daemon shared by all proptest cases (starting a daemon per case
/// would dominate the runtime); it lives for the whole test process.
fn abuse_daemon_addr() -> &'static str {
    static ABUSE_DAEMON: OnceLock<String> = OnceLock::new();
    ABUSE_DAEMON.get_or_init(|| {
        let cache = Arc::new(ResultCache::in_memory(16));
        let server = start_server(
            Executor::new(),
            cache,
            PoolConfig { workers: 1, queue_cap: 8, retry_after_ms: 10 },
        );
        let addr = server.addr().to_string();
        std::mem::forget(server);
        addr
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Arbitrary garbage frames (anything but a frame separator) must get
    // a typed error without killing the handler — and the same connection
    // must still serve a well-formed request afterwards.
    #[test]
    fn random_garbage_frames_never_break_the_daemon(
        raw in prop::collection::vec(any::<u8>(), 1..512),
    ) {
        // A newline would split the garbage into frames; keep it one.
        let garbage: Vec<u8> = raw.iter().map(|&b| if b == b'\n' { b'.' } else { b }).collect();
        let mut stream = TcpStream::connect(abuse_daemon_addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        stream.write_all(&garbage).expect("write garbage");
        stream.write_all(b"\n").expect("write newline");
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("reply");
        prop_assert!(n > 0, "daemon hung up on a small malformed frame");
        let reply = Json::parse(line.trim_end()).expect("replies are JSON");
        prop_assert_eq!(reply.bool_field("ok"), Some(false), "{}", reply.render());
        stream.write_all(b"{\"op\":\"health\"}\n").expect("write health");
        line.clear();
        reader.read_line(&mut line).expect("health reply");
        let reply = Json::parse(line.trim_end()).expect("health is JSON");
        prop_assert_eq!(reply.bool_field("ok"), Some(true), "{}", reply.render());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Every generated spec's canonical form must be a fixed point:
    // parse(canonical) == spec, and re-canonicalizing changes nothing.
    // This is the property the content-addressed cache rests on.
    #[test]
    fn canonical_serialization_round_trips(
        kind in 0u8..4,
        n_pairs in 1usize..16,
        sea in 0u64..5,
        range_m in 1.0f64..1000.0,
        rotation in -90.0f64..90.0,
        trials in 1usize..500,
        bits in 1usize..4096,
        seed in any::<u64>(),
        lo in 0usize..100,
        span in 0usize..100,
        ranges in prop::collection::vec(1.0f64..2000.0, 1..8),
    ) {
        let system = if n_pairs % 3 == 0 {
            SystemSpec::Pab
        } else if n_pairs % 3 == 1 {
            SystemSpec::Vab { n_pairs }
        } else {
            SystemSpec::Conventional { n_elements: n_pairs * 2 }
        };
        let env = if sea == 0 { EnvSpec::River } else { EnvSpec::Ocean { sea_state: (sea - 1) as u8 } };
        let spec = match kind {
            0 => JobSpec::McPoint {
                system, env, range_m, rotation_deg: rotation, trials, bits, seed,
                engine: if seed.is_multiple_of(2) { EngineSpec::LinkBudget } else { EngineSpec::SampleLevel },
            },
            1 => JobSpec::CampaignSlice {
                system, n_trials: lo + span + 1, bits, seed, lo, hi: lo + span,
                fault_intensity: if seed.is_multiple_of(2) { None } else { Some(0.5) },
            },
            2 => JobSpec::LinkBudgetSweep { system, env, ranges_m: ranges },
            _ => JobSpec::Figure { name: format!("fig_{}", seed % 30), trials, bits, seed },
        };
        let canon = spec.canonical();
        let back = JobSpec::from_json(&Json::parse(&canon).expect("canonical parses"))
            .expect("canonical deserializes");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.canonical(), canon);
        prop_assert_eq!(back.digest(), spec.digest());
    }
}
