//! Passband-path validation: the real-waveform route (tone synthesis →
//! passband multipath → carrier notch → tone detection) must agree with the
//! complex-baseband route used by the Monte Carlo engines.

use vab::acoustics::channel::ChannelModel;
use vab::acoustics::environment::{Environment, SeaState};
use vab::acoustics::geometry::Position;
use vab::phy::carrier::carrier_notch;
use vab::phy::waveform::{apply_ramps, chirp, tone, tone_burst};
use vab::util::fft::goertzel_power;
use vab::util::rng::seeded;
use vab::util::units::Hertz;

const F0: f64 = 18_500.0;
const FS: f64 = 96_000.0;

fn calm_river_channel(range: f64) -> ChannelModel {
    let mut env = Environment::river();
    env.sea_state = SeaState::Calm;
    ChannelModel::new(env, Position::new(0.0, 0.0, 2.0), Position::new(range, 0.0, 2.0), Hertz(F0))
}

#[test]
fn passband_tone_amplitude_matches_narrowband_gain() {
    let ch = calm_river_channel(60.0);
    let mut rng = seeded(1);
    let ir = ch.impulse_response(FS, &mut rng);
    let h = ir.narrowband_gain().abs();

    let n = 48_000; // 0.5 s of carrier
    let x = tone(F0, FS, n, 1.0, 0.0);
    let y = ir.apply_passband(&x);
    // Steady-state amplitude from the Goertzel bin over an interior window.
    let win = 8_192;
    let start = y.len() / 2;
    let seg = &y[start..start + win];
    let amp = 2.0 * goertzel_power(seg, F0, FS).sqrt() / win as f64;
    let rel_err = (amp - h).abs() / h;
    assert!(
        rel_err < 0.05,
        "passband amplitude {amp:.4e} vs narrowband gain {h:.4e} (rel err {rel_err:.3})"
    );
}

#[test]
fn passband_delay_matches_geometry_via_chirp() {
    let ch = calm_river_channel(45.0);
    let mut rng = seeded(2);
    let ir = ch.impulse_response(FS, &mut rng);
    let c = ch.environment().sound_speed();
    let expected_delay_s = 45.0 / c;

    // Probe with a chirp and find the matched-filter peak.
    let n = 9_600;
    let probe = chirp(15_000.0, 22_000.0, FS, n, 1.0);
    let y = ir.apply_passband(&probe);
    let mut best = (0usize, f64::MIN);
    // Correlate at integer lags around the expected arrival.
    let guess = (expected_delay_s * FS) as usize;
    for lag in guess.saturating_sub(30)..guess + 30 {
        if lag + n > y.len() {
            break;
        }
        let corr: f64 = probe.iter().zip(&y[lag..lag + n]).map(|(a, b)| a * b).sum();
        if corr > best.1 {
            best = (lag, corr);
        }
    }
    let measured_delay_s = best.0 as f64 / FS;
    // Multipath pulls the combined correlation peak slightly late (bounce
    // arrivals land within the delay spread of the direct path), so the
    // peak must sit in [direct, direct + spread].
    let spread = ir.delay_spread();
    assert!(
        measured_delay_s >= expected_delay_s - 3.0 / FS
            && measured_delay_s <= expected_delay_s + spread + 3.0 / FS,
        "chirp arrival at {measured_delay_s:.6}s vs geometric {expected_delay_s:.6}s (+spread {spread:.6}s)"
    );
}

#[test]
fn carrier_notch_reveals_backscatter_sidebands() {
    // An OOK-modulated passband signal: carrier plus ±400 Hz sidebands at
    // −30 dB. After the notch the sidebands must dominate the residual
    // carrier — the passband version of the reader's front end.
    let n = 32_768;
    let chip_rate = 600.0; // square-wave fundamental, comfortably past the notch edge
    let x: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / FS;
            // ±1 square wave with fundamental at `chip_rate`.
            let chip = if ((t * 2.0 * chip_rate) as u64).is_multiple_of(2) { 1.0 } else { -1.0 };
            (vab::util::TAU * F0 * t).sin() * (1.0 + 0.1 * chip)
        })
        .collect();
    let notch = carrier_notch(F0, 150.0, FS, 2401);
    let y = notch.filter_same(&x);
    let interior = &y[3000..n - 3000];
    let carrier_power = goertzel_power(interior, F0, FS);
    let sideband_power =
        goertzel_power(interior, F0 + chip_rate, FS) + goertzel_power(interior, F0 - chip_rate, FS);
    assert!(
        sideband_power > 10.0 * carrier_power,
        "sidebands {sideband_power:.2e} must dominate residual carrier {carrier_power:.2e}"
    );
}

#[test]
fn tone_burst_and_ramps_are_spectrally_contained() {
    // A ramped burst must put less energy into far-off bins than a hard-keyed
    // burst (the projector-friendliness argument for ramping).
    let n = 9_600;
    let mut ramped = tone_burst(F0, FS, 100, n, 1.0);
    apply_ramps(&mut ramped[..5189.min(n)], 480);
    let hard = tone_burst(F0, FS, 100, n, 1.0);
    let off = F0 + 3_000.0;
    let leak_ramped = goertzel_power(&ramped, off, FS);
    let leak_hard = goertzel_power(&hard, off, FS);
    assert!(
        leak_ramped < leak_hard,
        "ramping should reduce splatter: {leak_ramped:.3e} vs {leak_hard:.3e}"
    );
}

#[test]
fn multipath_channel_produces_visible_passband_isi() {
    // Shallow water at longer range: bounce arrivals within a fraction of a
    // millisecond. The passband response to a short burst must be longer
    // than the burst by about the delay spread.
    let ch = calm_river_channel(120.0);
    let mut rng = seeded(3);
    let ir = ch.impulse_response(FS, &mut rng);
    let spread = ir.delay_spread();
    assert!(spread > 0.0);
    let burst = tone_burst(F0, FS, 50, 400, 1.0); // ~260 samples of tone
    let y = ir.apply_passband(&burst);
    // Energy beyond (delay + burst length) exists because of late arrivals.
    let first = (ir.arrivals()[0].delay_s * FS) as usize;
    let burst_end = first + 300;
    let tail_energy: f64 =
        y[burst_end..burst_end + (spread * FS) as usize + 64].iter().map(|v| v * v).sum();
    assert!(tail_energy > 0.0, "late multipath arrivals must leave a tail");
}
