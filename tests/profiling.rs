//! Profiling-plane integration: allocation counts must be *work-derived*
//! — a fixed-seed workload attributes bit-identical per-stage allocation
//! counts at any worker count — and the collapsed-stack flame fold must
//! reproduce its golden fixture exactly. Together with the disabled-path
//! silence assertions in `tests/observability.rs`, these are the
//! contracts the CI alloc ratchet (`vab-obsctl alloc-gate`) stands on.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

use vab::fault::{FaultConfig, FaultPlan};
use vab::sim::baseline::SystemKind;
use vab::sim::montecarlo::{run_point_faulted, MonteCarloConfig, TrialEngine};
use vab::sim::scenario::Scenario;
use vab::util::units::Meters;
use vab_obsctl::flame::{self, Weight};
use vab_obsctl::trace::{MetricsDoc, Trace};

/// Allocation profiling is process-global (one `#[global_allocator]`),
/// so tests that enable/reset it serialize here and leave it disabled.
fn profile_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The fixed-seed faulted workload: 96 link-budget trials under fault
/// plan 77 — the same figure-shaped unit `tests/observability.rs` uses
/// for physics determinism, now profiled.
fn profiled_point(threads: usize) -> (u64, u64) {
    let s = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(260.0));
    let plan = FaultPlan::new(77, FaultConfig::with_intensity(0.6));
    let cfg = MonteCarloConfig {
        trials: 96,
        bits_per_trial: 256,
        seed: 77,
        engine: TrialEngine::LinkBudget,
        threads,
    };
    let r = run_point_faulted(&s, &cfg, &plan);
    (r.ber.errors(), r.packet_errors)
}

/// Per-stage counter snapshot keyed by stage name, restricted to stages
/// the workload actually drove (`calls > 0`).
fn stage_counts() -> BTreeMap<String, (u64, u64, u64, u64, u64)> {
    vab::obs::alloc::snapshot_stages()
        .into_iter()
        .filter(|s| s.calls > 0)
        .map(|s| {
            (s.name.to_string(), (s.calls, s.self_allocs, s.self_bytes, s.cum_allocs, s.cum_bytes))
        })
        .collect()
}

/// The tentpole acceptance contract: one worker or eight, a fixed-seed
/// figure attributes *exactly* the same allocation counts to each stage.
/// This is what lets `alloc_baseline.json` pin counts instead of
/// tolerancing them.
#[test]
fn per_stage_alloc_counts_bit_identical_across_worker_counts() {
    let _g = profile_lock();
    let was_profiling = vab::obs::alloc::profiling();
    vab::obs::alloc::enable();
    vab::obs::alloc::reset();
    let physics_1 = profiled_point(1);
    let counts_1 = stage_counts();
    vab::obs::alloc::reset();
    let physics_8 = profiled_point(8);
    let counts_8 = stage_counts();
    if !was_profiling {
        vab::obs::alloc::disable();
    }
    assert_eq!(physics_1, physics_8, "physics must stay thread-count independent");
    assert!(
        counts_1.contains_key("sim.linkbudget_trial"),
        "trial stage must be attributed: {counts_1:?}"
    );
    assert!(
        counts_1.contains_key("sim.channel_realization"),
        "nested channel stage must be attributed: {counts_1:?}"
    );
    let trial = &counts_1["sim.linkbudget_trial"];
    // Lost trials (fault blackouts) never enter the trial stage, so the
    // call count is below 96 — but it is fault-plan-derived, so exact.
    assert!(trial.0 > 0 && trial.0 <= 96, "stage calls bounded by trials: {trial:?}");
    assert!(trial.3 > 0, "trials allocate (codec buffers): {trial:?}");
    assert!(
        trial.3 >= trial.1,
        "cumulative counts include children: self {} > cum {}",
        trial.1,
        trial.3
    );
    assert_eq!(
        counts_1, counts_8,
        "per-stage allocation profile must be bit-identical at 1 vs 8 workers"
    );
}

/// Profiling must also be *run*-deterministic: the same seed twice gives
/// the same profile, which is the property the exact-pin gate relies on
/// across CI runs.
#[test]
fn repeated_runs_yield_identical_profiles() {
    let _g = profile_lock();
    let was_profiling = vab::obs::alloc::profiling();
    vab::obs::alloc::enable();
    vab::obs::alloc::reset();
    let _ = profiled_point(4);
    let first = stage_counts();
    vab::obs::alloc::reset();
    let _ = profiled_point(4);
    let second = stage_counts();
    if !was_profiling {
        vab::obs::alloc::disable();
    }
    assert_eq!(first, second, "fixed seed must reproduce the exact allocation profile");
}

/// A profiled metrics snapshot must survive the full surfacing path:
/// `Snapshot::to_json()` → `MetricsDoc::parse` → `profile::render`,
/// with self/cumulative attribution intact.
#[test]
fn profiled_snapshot_round_trips_through_obsctl() {
    let _g = profile_lock();
    let was_profiling = vab::obs::alloc::profiling();
    vab::obs::alloc::enable();
    vab::obs::alloc::reset();
    vab::obs::metrics::reset();
    let _ = profiled_point(2);
    let snap = vab::obs::metrics::Snapshot::capture();
    if !was_profiling {
        vab::obs::alloc::disable();
    }
    let doc = MetricsDoc::parse(&snap.to_json()).expect("snapshot JSON parses");
    let totals = doc.alloc_totals.expect("profiled snapshot carries alloc totals");
    assert!(totals.allocs > 0);
    let trial = doc
        .alloc_stages
        .iter()
        .find(|s| s.name == "sim.linkbudget_trial")
        .expect("trial stage surfaces in metrics.json");
    assert!(trial.calls > 0 && trial.calls <= 96);
    assert!(trial.cum_allocs >= trial.self_allocs);
    let table = vab_obsctl::profile::render(&doc, 5).expect("profile renders");
    assert!(table.contains("sim.linkbudget_trial"), "{table}");
    assert!(table.contains("allocation profile:"), "{table}");
}

/// The flame fold must reproduce its golden fixture byte-for-byte: a
/// two-trace span forest plus an id-less span collapses into sorted
/// `path weight` lines whose self weights conserve the root totals.
#[test]
fn flame_collapse_round_trips_golden_fixture() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/flame_trace.jsonl"
    ))
    .expect("fixture");
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/flame_collapsed.txt"
    ))
    .expect("golden");
    let trace = Trace::parse(&text);
    assert!(trace.skipped_lines.is_empty() && !trace.truncated_tail, "fixture must be clean");

    let lines = flame::collapse(&trace, Weight::TimeUs, None).expect("collapse");
    let expected: Vec<String> = golden.lines().map(String::from).collect();
    assert_eq!(lines, expected, "time-weighted collapse must match the golden output");
    // Self weights conserve the totals: both roots (1200 + 600) plus the
    // flat id-less span (900).
    let total: u64 =
        lines.iter().map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap()).sum();
    assert_eq!(total, 2700);

    // Allocation-weighted folds of the same fixture.
    let by_allocs = flame::collapse(&trace, Weight::AllocCount, None).expect("allocs");
    assert_eq!(
        by_allocs,
        vec![
            "svc.handle 7".to_string(),
            "svc.handle;svc.job_execute 13".to_string(),
            "svc.handle;svc.job_execute;sim.montecarlo 20".to_string(),
        ]
    );
    let by_bytes = flame::collapse(&trace, Weight::AllocBytes, None).expect("bytes");
    let bytes_total: u64 =
        by_bytes.iter().map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap()).sum();
    assert_eq!(bytes_total, 5120 + 1024, "byte weights conserve both traces' root totals");

    // Filtering to one trace drops the other trace and the id-less span.
    let one = flame::collapse(&trace, Weight::TimeUs, Some(0xbb)).expect("filtered");
    let one_total: u64 =
        one.iter().map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap()).sum();
    assert_eq!(one_total, 600);
}
