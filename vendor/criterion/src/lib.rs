//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API slice this workspace's benches use — [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], benchmark groups, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a minimal
//! timing loop instead of criterion's statistical analysis. Each benchmark
//! runs a short warm-up, then a fixed measurement pass, and prints the mean
//! time per iteration. Good enough to keep `cargo bench` compiling and
//! producing indicative numbers without network access to crates.io.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are sized (compatibility shim; sizing is ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per measurement batch.
    PerIteration,
}

/// Drives the timing loop for one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up / calibration pass: find an iteration count that keeps the
    // measurement pass short but above timer resolution.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(200);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "µs")
    } else {
        (mean_ns, "ns")
    };
    println!("{name:<48} {value:>10.3} {unit}/iter ({iters} iters)");
}

/// Top-level benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _parent: self }
    }
}

/// A group of related benchmarks (prefix shim over [`Criterion`]).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("  {name}"), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named runner, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point invoking one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iter() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn groups_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_function(format!("case_{}", 1), |b| b.iter(|| 2 + 2));
        group.finish();
    }
}
