//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, range and collection strategies,
//! [`prelude::any`], `prop_assert*` macros, and [`ProptestConfig`].
//!
//! Differences from upstream: no shrinking (a failing case panics with its
//! inputs printed via the assertion message), and case generation is
//! deterministic per test (seeded from the test's name) rather than
//! OS-random, which suits a reproducibility-first simulator workspace.

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Internal deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x5851_F42D_4C95_7F2D }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// FNV-1a hash of a test name — the per-test seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 63) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 0 {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy produced by [`prelude::any`].
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Namespaced strategy constructors (`prop::collection`, `prop::sample`).
pub mod prop {
    pub mod collection {
        //! Collection strategies.
        use crate::{Strategy, TestRng};

        /// Size specification for [`vec()`]: an exact size or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self { lo: r.start, hi: r.end }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                Self { lo: *r.start(), hi: *r.end() + 1 }
            }
        }

        /// `Vec` strategy: `size` elements of `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let n = self.size.lo + rng.below(span.max(1)) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Sampling helpers.
        use crate::{Arbitrary, TestRng};

        /// An index into a not-yet-known-length collection.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolves to a concrete index `< len`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{AnyStrategy, Arbitrary, ProptestConfig, Strategy};

    /// The default strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy { _marker: core::marker::PhantomData }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for __case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(0u8..255, 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn index_resolves(idx in any::<prop::sample::Index>(), len in 1usize..40) {
            prop_assert!(idx.index(len) < len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn config_attr_parses(x in 0u8..4) {
            prop_assert!(x < 4);
        }
    }
}
