//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`Rng`] (the core source trait), [`RngExt`] (`random` / `random_range`),
//! [`SeedableRng`], and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, but every consumer in this
//! workspace only requires determinism under a fixed seed, which this
//! provides bit-for-bit across platforms and thread counts.

/// Core random source: everything derives from `next_u64`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods on any [`Rng`]: typed draws and range sampling.
pub trait RngExt: Rng {
    /// Draws a value of `T` from its "standard" distribution (uniform over
    /// the type's range; `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open).
    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types drawable from a standard uniform distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 63) == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from (mirrors upstream's two-parameter
/// form so type context — not the literal — drives inference).
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo bias is < span/2^64 — negligible for the spans the
                // simulator draws (all ≪ 2^32).
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        let u: f64 = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.random_range(3usize..17);
            assert!((3..17).contains(&x));
        }
        let mut hits = [false; 8];
        for _ in 0..1_000 {
            hits[r.random_range(0usize..8)] = true;
        }
        assert!(hits.iter().all(|&h| h), "all bins reachable");
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut r = StdRng::seed_from_u64(5);
        let ones = (0..100_000).filter(|_| r.random::<bool>()).count();
        assert!((ones as f64 / 1e5 - 0.5).abs() < 0.01, "{ones}");
    }
}
