//! Quickstart: one backscatter round trip, end to end.
//!
//! Builds the river scenario from the paper's headline claim — a Van Atta
//! node 300 m from the reader — prints the link budget, runs a Monte Carlo
//! BER measurement, and then one full waveform-level trial.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vab::sim::baseline::SystemKind;
use vab::sim::linkbudget::LinkBudget;
use vab::sim::montecarlo::{run_point, MonteCarloConfig, TrialEngine};
use vab::sim::scenario::Scenario;
use vab::util::units::Meters;

fn main() {
    // The headline operating point: 4 Van Atta pairs, 300 m, 100 bps.
    let scenario = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(300.0));

    println!("=== link budget at {} ===", scenario.range());
    let budget = LinkBudget::compute(&scenario);
    for (term, value) in budget.rows() {
        println!("  {term:<42} {value:>8.1}");
    }
    println!();

    // Monte Carlo over channel realizations (the simulator's stand-in for
    // the paper's 1,500 field trials).
    let mc = MonteCarloConfig {
        trials: 100,
        bits_per_trial: 512,
        seed: 42,
        engine: TrialEngine::LinkBudget,
        threads: 0,
    };
    let result = run_point(&scenario, &mc);
    println!("=== Monte Carlo, {} trials x {} bits ===", mc.trials, mc.bits_per_trial);
    println!("  mean Eb/N0 (with multipath): {:.1} dB", result.ebn0.mean());
    println!("  aggregate BER:               {:.2e}", result.ber.ber());
    println!("  median-deployment BER:       {:.2e}", result.median_ber());
    println!("  packet error rate:           {:.3}", result.per());
    println!();

    // One honest waveform trial: real modulator, multipath, sync, demod.
    let slow = MonteCarloConfig { trials: 4, engine: TrialEngine::SampleLevel, ..mc };
    let wave = run_point(&scenario, &slow);
    println!("=== sample-level validation, {} waveform trials ===", slow.trials);
    println!("  bit errors: {} / {}", wave.ber.errors(), wave.ber.bits());
    println!();
    println!(
        "A 10-microwatt-class node just delivered data over {} of river water.",
        scenario.range()
    );
}
