//! Coastal-monitoring deployment: the application the paper motivates.
//!
//! A boat-mounted reader inventories a field of battery-free sensor nodes
//! moored along a coastline, assigns TDMA slots, and collects one round of
//! temperature readings — exercising the node FSM, the downlink command
//! set, the MAC layer, and the energy model together.
//!
//! ```text
//! cargo run --release --example coastal_monitoring
//! ```

use vab::link::frame::Frame;
use vab::mac::inventory::run_inventory;
use vab::node::array::VanAttaArray;
use vab::node::commands::Command;
use vab::node::node::{Node, NodeConfig, NodeEvent};
use vab::util::rng::seeded;
use vab::util::units::{Hertz, Seconds};

const READER: u8 = 0x00;
const F0: Hertz = Hertz(18_500.0);

fn main() {
    // --- Deploy six nodes, each with a 4-pair Van Atta array.
    let mut nodes: Vec<Node> = (1u8..=6)
        .map(|addr| {
            let mut n = Node::new(NodeConfig::new(addr), VanAttaArray::vab_default(4, F0));
            n.force_powered(); // pre-charged at deployment
            n.queue_reading(vec![20 + addr, addr]); // fake temperature reading
            n
        })
        .collect();
    // The MAC layer addresses ocean-scale populations (u32); the one-byte
    // node/wire addresses embed losslessly.
    let addresses: Vec<u32> = nodes.iter().map(|n| u32::from(n.config.address)).collect();

    // --- Phase 1: discover the population with framed slotted ALOHA.
    let mut rng = seeded(7);
    let report = run_inventory(&addresses, 8, 64, Seconds(0.5), Seconds(0.41), &mut rng);
    println!(
        "inventory: discovered {} nodes in {} rounds / {} slots ({} collisions)",
        report.discovered.len(),
        report.rounds,
        report.slots_used,
        report.collisions
    );

    // --- Phase 2: push each node its TDMA slot over the downlink.
    for node in nodes.iter_mut() {
        // The schedule indexes slots as u16 (a full 256-node inventory needs
        // 256 slots) but slot *indices* still fit the one-byte wire command.
        let slot = report.schedule.slot_of(u32::from(node.config.address)).expect("scheduled");
        let slot = u8::try_from(slot).expect("slot index fits the wire command");
        let cmd =
            Frame::new(node.config.address, READER, 0, Command::AssignSlot { slot }.to_payload());
        match node.handle_downlink(&cmd) {
            NodeEvent::SlotAssigned(s) => {
                println!("node {:#04x} took slot {s}", node.config.address)
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    // --- Phase 3: one collection round — query each slot owner in turn.
    println!("\ncollection round ({}s):", report.schedule.round_duration());
    let mut readings = Vec::new();
    for node in nodes.iter_mut() {
        let query = Frame::new(node.config.address, READER, 0, Command::Query.to_payload());
        let NodeEvent::Reply { channel_bits, bit_rate } = node.handle_downlink(&query) else {
            panic!("node did not reply");
        };
        // (The acoustic leg is exercised in the quickstart / experiments;
        // here we decode the clean channel bits at the reader.)
        let frame = node.config.link.decode(&channel_bits).expect("clean decode");
        println!(
            "  slot {}: node {:#04x} -> {} channel bits @ {bit_rate} bps, payload {:?}",
            node.assigned_slot().expect("assigned"),
            frame.src,
            channel_bits.len(),
            frame.payload
        );
        node.reply_done();
        readings.push(frame.payload);
    }
    assert_eq!(readings.len(), 6);
    println!(
        "\nall {} readings collected; next round in {}.",
        readings.len(),
        report.schedule.round_duration()
    );
}
