//! The deepest end-to-end demo: a complete reader↔node exchange where
//! *both* directions are simulated at the waveform level.
//!
//! Downlink: the reader PIE-keys a `Query` onto its carrier; the envelope
//! crosses 300 m of river (multipath included); the node's µW envelope
//! detector slices it and the node FSM decodes the frame. Uplink: the node
//! backscatters its coded reply through the retrodirective round trip,
//! carrier leak and noise; the reader synchronizes, demodulates, runs soft
//! Viterbi, and recovers the frame.
//!
//! ```text
//! cargo run --release --example full_session
//! ```

use vab::link::frame::Frame;
use vab::node::array::VanAttaArray;
use vab::node::commands::Command;
use vab::node::node::{Node, NodeConfig};
use vab::sim::baseline::SystemKind;
use vab::sim::scenario::Scenario;
use vab::sim::session::run_exchange;
use vab::util::rng::seeded;
use vab::util::units::{Hertz, Meters};

const READER: u8 = 0x00;
const NODE: u8 = 0x42;

fn main() {
    let mut node = Node::new(NodeConfig::new(NODE), VanAttaArray::vab_default(4, Hertz(18_500.0)));
    node.force_powered();
    node.queue_reading(vec![0x17, 0x2A]); // 23.42° — a temperature reading
    node.queue_reading(vec![0x17, 0x31]);

    let mut rng = seeded(2023);
    for (i, range) in [100.0, 300.0].iter().enumerate() {
        let scenario = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(*range));
        println!("=== exchange {} at {range} m ===", i + 1);
        let query = Frame::new(NODE, READER, 0, Command::Query.to_payload());
        println!("reader: PIE-keying Query for node {NODE:#04x} onto the carrier…");
        let out = run_exchange(&scenario, &mut node, &query, &mut rng);
        println!(
            "node:   envelope detector {} the command (event: {})",
            if out.downlink_ok { "decoded" } else { "missed" },
            out.node_event_kind
        );
        match out.uplink_frame {
            Ok(frame) => {
                println!(
                    "reader: backscatter reply synchronized and decoded — node {:#04x} says {:?}",
                    frame.src, frame.payload
                );
            }
            Err(e) => println!("reader: no reply recovered ({e:?})"),
        }
        println!();
    }
    println!("Both exchanges crossed real multipath water in both directions,");
    println!("through the actual detector, modulator, synchronizer and decoder.");
}
