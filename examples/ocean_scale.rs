//! Ocean-scale network walkthrough: 10,000 backscatter nodes, 100 reader
//! cells, multi-hop relays — the scale tier of `vab-net` end to end.
//!
//! Deploys N = 10,000 nodes at the canonical ocean density (4096
//! nodes/km², sea state 1), partitions them into `⌈N¼⌉² = 100` reader
//! cells under an 8×8 FDM reuse plan, runs the concurrent capture-aware
//! inventory, plans VBF relay routes for the rim nodes the direct link
//! can't reach, and settles into steady-state TDMA. See `SCALING.md` for
//! the design and the Θ(√n) capacity story this feeds (figure FN3).
//!
//! ```text
//! cargo run --release --example ocean_scale
//! ```

use vab::net::{run_scale_deployment, RoutePolicy, ScaleSpec};

fn main() {
    let spec = ScaleSpec::ocean(10_000, 2023);
    assert_eq!(spec.policy, RoutePolicy::Vbf);
    println!("=== deployment ===");
    println!("  nodes:           {}", spec.n_nodes);
    println!("  readers:         {} (⌈N¼⌉² cells)", spec.n_readers);
    println!(
        "  patch:           {:.0} m × {:.0} m at {:.1} m node pitch",
        spec.x_m,
        spec.y_m,
        spec.node_pitch_m()
    );
    println!("  scale digest:    {:016x}", spec.digest());

    let t0 = std::time::Instant::now();
    let report = run_scale_deployment(&spec);
    let elapsed = t0.elapsed();

    println!("\n=== inventory (concurrent cells, capture + relays) ===");
    println!("  interference horizon: {:.0} m", report.horizon_m);
    println!("  discovered direct:    {}", report.inventory.n_direct());
    println!("  discovered via relay: {}", report.inventory.n_relayed());
    println!("  coverage:             {:.1} %", report.inventory.coverage() * 100.0);
    println!("  contention rounds:    {}", report.inventory.rounds);
    println!("  collisions:           {}", report.inventory.collisions);

    println!("\n=== steady state (per-cell TDMA, relay billing) ===");
    println!("  served nodes:         {}", report.steady.served);
    println!("  aggregate capacity:   {:.1} bps", report.steady.aggregate_capacity_bps);
    println!("  per-node goodput:     {:.3} bps", report.steady.mean_goodput_bps);
    println!("  Jain fairness:        {:.4}", report.steady.jain_fairness);
    println!("  mean hops/delivery:   {:.2}", report.steady.mean_hops);

    println!(
        "\n{} nodes across {:.1} km² simulated in {:.2?} — equal specs reproduce \
         this report byte for byte.",
        spec.n_nodes,
        spec.x_m * spec.y_m / 1e6,
        elapsed
    );
    assert!(report.inventory.coverage() > 0.9, "ocean cells must reach the rim through relays");
}
