//! Why Van Atta? The orientation study, in miniature.
//!
//! Sweeps the node's rotation and prints the backscatter gain of the
//! retrodirective array against the same aperture wired conventionally —
//! the figure-8 collapse that motivates the paper's architecture — then
//! confirms the link-level consequence with a quick BER run at ±45°.
//!
//! ```text
//! cargo run --release --example orientation_study
//! ```

use vab::node::array::{conventional_backscatter_factor, VanAttaArray};
use vab::sim::baseline::SystemKind;
use vab::sim::montecarlo::{run_point, MonteCarloConfig, TrialEngine};
use vab::sim::scenario::Scenario;
use vab::util::units::{Degrees, Hertz, Meters};

const F0: Hertz = Hertz(18_500.0);

fn bar(db: f64) -> String {
    let n = ((db + 10.0) / 1.5).clamp(0.0, 28.0) as usize;
    "#".repeat(n)
}

fn main() {
    let array = VanAttaArray::vab_default(4, F0);
    println!("monostatic backscatter gain vs incidence (8 elements, λ/2 spacing)\n");
    println!("{:>6}  {:>10} {:28}  {:>12}", "angle", "Van Atta", "", "conventional");
    for deg in (-75..=75).step_by(15) {
        let theta = Degrees(deg as f64);
        let van = array.retro_gain_db(theta, F0);
        let conv = 20.0
            * (conventional_backscatter_factor(&array.geometry, theta, F0).abs()).max(1e-6).log10();
        println!("{:>5}°  {:>9.1}dB {:28}  {:>10.1}dB  {}", deg, van, bar(van), conv, bar(conv));
    }

    // Link-level confirmation at 100 m, rotated 45°.
    let mc = MonteCarloConfig {
        trials: 60,
        bits_per_trial: 256,
        seed: 11,
        engine: TrialEngine::LinkBudget,
        threads: 0,
    };
    println!("\nBER at 100 m, node rotated 45°:");
    for sys in [SystemKind::Vab { n_pairs: 4 }, SystemKind::ConventionalArray { n_elements: 8 }] {
        let s = Scenario::river(sys, Meters(100.0)).with_rotation(Degrees(45.0));
        let r = run_point(&s, &mc);
        println!(
            "  {:<30} BER {:.2e}   (mean Eb/N0 {:>6.1} dB)",
            sys.label(),
            r.ber.ber(),
            r.ebn0.mean()
        );
    }
    println!("\nThe pair-swap costs nothing at broadside and buys the entire off-axis range.");
}
