//! Network deployment: inventory and steady-state traffic for a 64-node
//! Van Atta backscatter network in the river environment.
//!
//! Drops 64 backscatter nodes into a 60 m x 40 m deployment box, derives a
//! per-node acoustic channel (spreading, absorption, multipath fading,
//! orientation), then runs the full MAC sequence over that substrate:
//! slotted-ALOHA inventory with physical-layer capture — colliding replies
//! superpose at the hydrophone and the strongest wins only if its SINR
//! clears the capture threshold — followed by TDMA steady state where each
//! slot delivers at the owner's actual frame-success probability.
//!
//! ```text
//! cargo run --release --example network_deployment
//! ```

use vab::net::{Network, NetworkSpec};

fn main() {
    let spec = NetworkSpec::river(64, 2023);
    println!("=== deployment ===");
    println!("  nodes:            {}", spec.n_nodes);
    println!(
        "  volume:           {} m x {} m box, {} m standoff",
        spec.volume.x_m, spec.volume.y_m, spec.volume.standoff_m
    );
    println!("  density:          {:.1} nodes / 1000 m^3", spec.density_per_1000m3());
    println!("  topology digest:  {:016x}", spec.digest());

    let net = Network::build(&spec);
    let nearest = net.channels.iter().map(|c| c.range_m).fold(f64::INFINITY, f64::min);
    let farthest = net.channels.iter().map(|c| c.range_m).fold(0.0f64, f64::max);
    let worst = net.channels.iter().map(|c| c.packet_success).fold(1.0f64, f64::min);
    println!("  reader range:     {nearest:.1} m (nearest) .. {farthest:.1} m (farthest)");
    println!(
        "  frame:            {} channel bits / slot of {:.2} s",
        net.frame_bits,
        net.slot_duration_s()
    );
    println!("  worst node frame-success: {worst:.3}");
    println!();

    println!("=== inventory (slotted ALOHA + capture) ===");
    let inventory = net.run_inventory();
    println!("  discovered:       {} / {}", inventory.discovered.len(), inventory.n_nodes);
    println!("  coverage:         {:.1} %", inventory.coverage() * 100.0);
    println!("  rounds:           {}", inventory.rounds);
    println!("  slots used:       {}", inventory.slots_used);
    println!("  collisions:       {}", inventory.collisions);
    println!("  time to inventory: {:.0} s at 100 bps", inventory.time_s);
    println!();

    println!("=== steady state (TDMA) ===");
    let steady = net.run_steady_state(&inventory.discovered);
    println!("  round duration:   {:.1} s", steady.round_duration_s);
    println!("  aggregate goodput: {:.1} bps", steady.aggregate_goodput_bps);
    println!("  Jain fairness:    {:.4}", steady.jain_fairness);
    let (best_addr, best) = steady
        .per_node_goodput_bps
        .iter()
        .copied()
        .fold((0u32, 0.0f64), |acc, (a, g)| if g > acc.1 { (a, g) } else { acc });
    println!("  best node:        #{best_addr} at {best:.2} bps");
    println!();
    println!(
        "{} batteryless nodes inventoried and scheduled over {:.0} m of river water.",
        inventory.discovered.len(),
        farthest
    );
}
