//! Regenerates the committed golden telemetry fixtures under
//! `tests/fixtures/` — the compact cross-layer trace and metrics
//! snapshots that the `vab-obsctl` round-trip tests analyze.
//!
//! The workload is deliberately small but touches every event family the
//! analyzer cares about: a faulted Monte-Carlo campaign (deployments,
//! fault activations, stage timers), a waveform-level reader↔node
//! exchange (session events), an ARQ retransmit storm, BER-spike rate
//! fallbacks, a silence burst with re-inventory, and a brownout cascade.
//!
//! ```text
//! cargo run --release --example gen_golden_trace [out_dir]
//! ```
//!
//! Writes `golden_trace.jsonl`, `golden_metrics.json` and
//! `regressed_metrics.json` (the same snapshot with every stage sum
//! doubled — the diff test's injected 2× regression).

use std::sync::Arc;

use vab::fault::FaultConfig;
use vab::harvest::budget::NodeMode;
use vab::harvest::pmu::Pmu;
use vab::link::arq::ArqSender;
use vab::link::frame::Frame;
use vab::mac::inventory::{reinventory, SilenceMonitor};
use vab::mac::rate_adapt::RateController;
use vab::node::array::VanAttaArray;
use vab::node::commands::Command;
use vab::node::node::{Node, NodeConfig};
use vab::obs::sink::JsonlSink;
use vab::sim::baseline::SystemKind;
use vab::sim::campaign::{run_campaign, CampaignConfig};
use vab::sim::scenario::Scenario;
use vab::sim::session::run_exchange;
use vab::util::rng::seeded;
use vab::util::units::{Hertz, Meters, Seconds, Watts};

const READER: u8 = 0x00;
const NODE: u8 = 0x42;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "tests/fixtures".into());
    let out = std::path::Path::new(&out_dir);
    std::fs::create_dir_all(out).expect("create fixture dir");

    vab::obs::metrics::reset();
    let trace_path = out.join("golden_trace.jsonl");
    vab::obs::install(Arc::new(JsonlSink::create(&trace_path).expect("jsonl sink")));

    // 1. Faulted campaign: deployment outcomes, fault activations,
    //    Monte-Carlo losses and the per-stage timers underneath.
    let campaign = CampaignConfig {
        n_trials: 48,
        faults: Some(FaultConfig::with_intensity(0.6)),
        ..CampaignConfig::vab_default()
    };
    let report = run_campaign(&campaign);
    println!("campaign: {} deployments simulated", report.records.len());

    // 2. One waveform-level exchange for the session timeline.
    let mut node = Node::new(NodeConfig::new(NODE), VanAttaArray::vab_default(4, Hertz(18_500.0)));
    node.force_powered();
    node.queue_reading(vec![0x17, 0x2A]);
    let mut rng = seeded(2023);
    let scenario = Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(100.0));
    let query = Frame::new(NODE, READER, 0, Command::Query.to_payload());
    let exch = run_exchange(&scenario, &mut node, &query, &mut rng);
    println!("session: downlink_ok={} uplink={}", exch.downlink_ok, exch.uplink_frame.is_ok());

    // 3. ARQ retransmit storm: one payload, corrupted ACKs, every timeout
    //    burns a retry until the sender drops the frame.
    let mut arq = ArqSender::new(8);
    arq.offer(vec![0xAB; 4]).expect("arq idle");
    for _ in 0..=8 {
        arq.on_corrupt_ack();
        arq.on_timeout();
    }

    // 4. Rate adaptation: climb on successes, then repeated BER spikes
    //    knock the node back down one rate at a time.
    let mut rc = RateController::with_policy(1, 1);
    for _ in 0..3 {
        rc.on_outcome(u32::from(NODE), true);
    }
    for _ in 0..3 {
        rc.on_ber_sample(u32::from(NODE), 0.5);
    }

    // 5. Silence burst + re-inventory: five nodes go quiet back-to-back,
    //    then the reader re-discovers the two still reachable.
    let mut silence = SilenceMonitor::new(2);
    for addr in 1..=5u8 {
        silence.on_poll(u32::from(addr), false);
        silence.on_poll(u32::from(addr), false);
    }
    let mut inv_rng = seeded(7);
    let report = reinventory(&[6, 7], &[1, 2], 4, 8, Seconds(0.5), Seconds(0.05), &mut inv_rng);
    println!("reinventory: {} nodes scheduled", report.discovered.len());

    // 6. Brownout cascade: charge the cap past wake, then starve it, six
    //    times over.
    let mut pmu = Pmu::vab_default();
    for _ in 0..6 {
        while !pmu.is_active() {
            pmu.step(Watts(5e-3), NodeMode::Sleep, Seconds(0.05));
        }
        while pmu.is_active() {
            pmu.step(Watts(0.0), NodeMode::Backscatter, Seconds(0.05));
        }
    }

    vab::obs::flush();
    vab::obs::disable();

    let snap = vab::obs::metrics::Snapshot::capture();
    snap.write_json(&out.join("golden_metrics.json")).expect("write golden metrics");

    // The doctored snapshot: identical shape, every stage's total time
    // doubled — mean per call 2x, which `vab-obsctl diff` must flag.
    let mut slow = snap.clone();
    for h in &mut slow.stages {
        h.sum *= 2.0;
    }
    std::fs::write(out.join("regressed_metrics.json"), slow.to_json())
        .expect("write regressed metrics");

    let lines = std::fs::read_to_string(&trace_path).expect("trace").lines().count();
    println!("wrote {} ({lines} events) + metrics snapshots to {}", trace_path.display(), out_dir);
}
