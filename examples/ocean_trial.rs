//! The ocean trial: sea states, surface motion, and what they cost.
//!
//! Reproduces the flavour of the paper's first-ever ocean validation of
//! underwater backscatter: BER vs range at increasing sea state, plus a
//! look at the channel structure (arrivals, Doppler-bearing surface paths).
//!
//! ```text
//! cargo run --release --example ocean_trial
//! ```

use vab::acoustics::channel::ChannelModel;
use vab::acoustics::environment::SeaState;
use vab::acoustics::geometry::Position;
use vab::sim::baseline::SystemKind;
use vab::sim::montecarlo::{run_point, MonteCarloConfig, TrialEngine};
use vab::sim::scenario::Scenario;
use vab::util::rng::seeded;
use vab::util::units::{Hertz, Meters};

fn main() {
    // Peek at the physical channel first: 100 m in a 12 m coastal column.
    let env = vab::acoustics::environment::Environment::ocean(SeaState::Slight);
    let ch = ChannelModel::new(
        env,
        Position::new(0.0, 0.0, 5.0),
        Position::new(100.0, 0.0, 6.0),
        Hertz(18_500.0),
    );
    let mut rng = seeded(3);
    let arrivals = ch.arrivals(&mut rng);
    println!("channel at 100 m, sea state 3 (slight): {} coherent arrivals", arrivals.len());
    for a in &arrivals {
        println!(
            "  τ={:>7.2} ms  |a|={:.2e}  bounces s/b={}/{}  surface wobble β={:.2} rad @ {:.1} Hz",
            a.delay_s * 1e3,
            a.gain.abs(),
            a.n_surface,
            a.n_bottom,
            a.surface_mod.beta_rad,
            a.surface_mod.freq_hz,
        );
    }

    // BER vs range across sea states.
    let mc = MonteCarloConfig {
        trials: 80,
        bits_per_trial: 256,
        seed: 1,
        engine: TrialEngine::LinkBudget,
        threads: 0,
    };
    println!("\nVAB BER vs range across sea states (100 bps):");
    println!("{:>8} {:>12} {:>12} {:>12} {:>12}", "range", "calm", "smooth", "slight", "moderate");
    for d in [50.0, 100.0, 125.0, 150.0, 175.0] {
        print!("{d:>6} m ");
        for ss in [SeaState::Calm, SeaState::Smooth, SeaState::Slight, SeaState::Moderate] {
            let s = Scenario::ocean(SystemKind::Vab { n_pairs: 4 }, Meters(d), ss);
            let r = run_point(&s, &mc);
            print!(" {:>11.2e}", r.ber.ber());
        }
        println!();
    }
    println!("\nRougher seas scatter the coherent surface paths away and cost the");
    println!("retrodirective array part of its multipath-recombination gain —");
    println!("graceful degradation rather than collapse.");
}
