//! The energy story: cold start, sustained operation, brown-out, recovery.
//!
//! Walks a battery-free node through its life at three ranges from the
//! reader, using the full harvesting chain (transducer aperture →
//! rectifier → storage capacitor → PMU) — and shows why the prior
//! state of the art was energy-limited to tens of metres.
//!
//! ```text
//! cargo run --release --example energy_lifecycle
//! ```

use vab::harvest::budget::{NodeMode, PowerBudget};
use vab::harvest::pmu::{Pmu, PmuState};
use vab::harvest::rectifier::Rectifier;
use vab::sim::baseline::SystemKind;
use vab::sim::linkbudget::harvest_at;
use vab::sim::scenario::Scenario;
use vab::util::units::{Meters, Seconds};

fn main() {
    let budget = PowerBudget::vab_node();
    println!("node power budget:");
    for mode in NodeMode::all() {
        println!("  {:<12} {:>7.2} µW", mode.label(), budget.total(mode).uw());
    }

    let rect = Rectifier::schottky_doubler();
    println!("\nharvest vs range (VAB 4-pair array vs PAB single element):");
    println!(
        "{:>8} {:>14} {:>14} {:>16}",
        "range", "VAB acoustic", "VAB rectified", "PAB rectified"
    );
    for d in [5.0, 15.0, 30.0, 60.0, 120.0] {
        let vab_ac = harvest_at(&Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(d)));
        let pab_ac = harvest_at(&Scenario::river(SystemKind::Pab, Meters(d)));
        println!(
            "{:>6} m {:>11.2} µW {:>11.2} µW {:>13.3} µW",
            d,
            vab_ac.uw(),
            rect.dc_output(vab_ac).uw(),
            rect.dc_output(pab_ac).uw()
        );
    }

    // Life of a node at 20 m: cold start → listen → starve → recover.
    println!("\nlifecycle at 20 m (0.5 s steps):");
    let p_in = harvest_at(&Scenario::river(SystemKind::Vab { n_pairs: 4 }, Meters(20.0)));
    let mut pmu = Pmu::vab_default();
    let dt = Seconds(0.5);
    let mut t = 0.0;
    // Cold start under the reader's carrier.
    while pmu.state() == PmuState::ColdStart {
        pmu.step(p_in, NodeMode::Sleep, dt);
        t += dt.value();
    }
    println!("  t={t:>7.1}s  cold start complete at {:.2} (woke up)", pmu.voltage());
    // Sustained listening for a minute.
    for _ in 0..120 {
        pmu.step(p_in, NodeMode::Listen, dt);
        t += dt.value();
    }
    println!(
        "  t={t:>7.1}s  after 60 s of listening: {:.2}, availability {:.0}%",
        pmu.voltage(),
        100.0 * pmu.availability()
    );
    // The boat leaves: no carrier, node keeps listening until brown-out.
    let mut starve_time = 0.0;
    while pmu.is_active() {
        pmu.step(vab::util::units::Watts(0.0), NodeMode::Listen, dt);
        t += dt.value();
        starve_time += dt.value();
    }
    println!(
        "  t={t:>7.1}s  carrier gone: survived {starve_time:.0} s on the capacitor, then brown-out"
    );
    // The boat returns.
    while !pmu.is_active() {
        pmu.step(p_in, NodeMode::Sleep, dt);
        t += dt.value();
    }
    println!("  t={t:>7.1}s  carrier back: recovered (brown-outs so far: {})", pmu.brownouts);
    println!("\nBattery-free operation is a duty-cycle negotiation with the water column.");
}
