//! # vab — Van Atta Acoustic Backscatter
//!
//! Umbrella crate re-exporting the full VAB workspace public API. See the
//! README for a tour and `examples/` for runnable entry points.

pub use vab_acoustics as acoustics;
pub use vab_core as node;
pub use vab_fault as fault;
pub use vab_harvest as harvest;
pub use vab_link as link;
pub use vab_mac as mac;
pub use vab_net as net;
pub use vab_obs as obs;
pub use vab_phy as phy;
pub use vab_piezo as piezo;
pub use vab_sim as sim;
pub use vab_svc as svc;
pub use vab_util as util;
